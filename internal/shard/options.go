package shard

import (
	"time"

	"regions/internal/metrics"
	"regions/internal/trace"
)

// This file is the engine's construction surface: functional options over a
// private settings struct. The Config literal grew a field per PR (sharding,
// stealing, metrics, heap profiling, deferred deletion, idle sweeping...)
// and migration/resize would have added several more; options keep each knob
// a named, documented, composable unit — shard.NewEngine(shard.WithShards(8),
// shard.WithMigration(cfg)) — while New(Config) survives as a thin
// deprecated adapter for existing callers.

// PlacementFunc maps an affinity key to a home shard index in [0, shards).
// It must be a pure function of its arguments: placement runs on every
// Submit and, under Resize, with a changing shard count.
type PlacementFunc func(key string, shards int) int

// defaultPlacement is the engine's historical placement: FNV-1a mod shards.
func defaultPlacement(key string, shards int) int {
	return int(fnv32a(key) % uint32(shards))
}

// MigrationConfig tunes the background migration coordinator (see
// migrate.go). The zero value leaves the coordinator off; WithMigration
// applies defaults to zero fields when Enabled is set.
type MigrationConfig struct {
	// Enabled starts the coordinator goroutine.
	Enabled bool
	// Interval is the poll period over the shards' published busy-cycle and
	// steal counters (default 2ms of wall clock).
	Interval time.Duration
	// SkewRatio is the busiest/idlest busy-cycle delta ratio that counts a
	// poll as skewed (default 4). An idle shard (zero delta) opposite a busy
	// one always counts as skewed.
	SkewRatio float64
	// SustainedPolls is how many consecutive skewed polls trigger a
	// rebalance (default 3), so a single bursty poll doesn't move regions.
	SustainedPolls int
	// MaxMoves bounds the regions migrated per rebalance (default 1).
	MaxMoves int
	// OnMigrate, when non-nil, is called after each completed migration
	// (coordinator- and Resize-initiated) on the initiating goroutine. The
	// driver uses it to re-root any untracked pointers it holds into the
	// moved region, via Migration.Rec.Translate.
	OnMigrate func(m Migration)
}

func (c *MigrationConfig) withDefaults() MigrationConfig {
	out := *c
	if out.Interval <= 0 {
		out.Interval = 2 * time.Millisecond
	}
	if out.SkewRatio <= 1 {
		out.SkewRatio = 4
	}
	if out.SustainedPolls <= 0 {
		out.SustainedPolls = 3
	}
	if out.MaxMoves <= 0 {
		out.MaxMoves = 1
	}
	return out
}

// settings is the resolved engine configuration NewEngine builds from its
// options. Config is embedded so the deprecated New(Config) adapter is one
// assignment.
type settings struct {
	Config
	placement PlacementFunc
	migration MigrationConfig
	spanT     *trace.Tracer
}

// Option configures an Engine at construction.
type Option func(*settings)

// WithShards sets the initial worker count (default 1; values below 1
// become 1). Engine.Resize can change it later.
func WithShards(n int) Option { return func(s *settings) { s.Shards = n } }

// WithPageBatch sets each shard's free-page cache batch (default
// DefaultPageBatch; 1 disables batching).
func WithPageBatch(n int) Option { return func(s *settings) { s.PageBatch = n } }

// WithQueueCap sets the per-shard pending-task deque capacity (default 32).
func WithQueueCap(c int) Option { return func(s *settings) { s.Queue = c } }

// WithNoSteal disables work stealing: every task runs on its home shard.
func WithNoSteal() Option { return func(s *settings) { s.NoSteal = true } }

// WithUnsafe runs every shard on the unsafe region library.
func WithUnsafe() Option { return func(s *settings) { s.Unsafe = true } }

// WithMetrics attaches every shard's runtime, space, and per-shard labeled
// series to reg, plus the engine's migration counters.
func WithMetrics(reg *metrics.Registry) Option {
	return func(s *settings) { s.Metrics = reg }
}

// WithHeapProfileEvery makes each shard capture a heap profile every n
// completed tasks (see Config.HeapProfileEvery).
func WithHeapProfileEvery(n int) Option {
	return func(s *settings) { s.HeapProfileEvery = n }
}

// WithDeferredDelete runs every shard runtime with deferred reclamation
// (detach + incremental sweep); budget and highWater forward to the core
// options, zero keeping the core defaults.
func WithDeferredDelete(budget, highWater int) Option {
	return func(s *settings) {
		s.DeferredDelete = true
		s.SweepBudget = budget
		s.SweepHighWater = highWater
	}
}

// WithIdleSweep makes workers that find no runnable task sweep one slice of
// sweep debt before blocking (meaningful only with WithDeferredDelete).
func WithIdleSweep(on bool) Option { return func(s *settings) { s.IdleSweep = on } }

// WithNoStrPool disables the pooled string allocator's free lists on every
// shard runtime (core.Options.NoStrPool): RstrFree becomes accounting-only
// and every RstrAlloc bumps, for A/B comparison against the pooled default.
func WithNoStrPool() Option { return func(s *settings) { s.NoStrPool = true } }

// WithPlacement replaces the affinity-key placement function (default:
// FNV-1a hash mod shard count). Round-robin placement of empty-key tasks is
// unaffected.
func WithPlacement(fn PlacementFunc) Option {
	return func(s *settings) {
		if fn != nil {
			s.placement = fn
		}
	}
}

// WithMigration configures live region migration: cfg.Enabled starts the
// skew-watching coordinator; Engine.MigrateRegion and Engine.Resize work
// regardless, but honor cfg.OnMigrate.
func WithMigration(cfg MigrationConfig) Option {
	return func(s *settings) { s.migration = cfg.withDefaults() }
}

// WithSpanTracer attaches t as the engine's span sink: workers bracket
// idle-sweep slices, close-time sweep drains, stolen-task executions, and
// migration export/import pauses in begin/end span pairs (trace.SpanBegin /
// trace.SpanEnd) stamped with the executing shard's own simulated clock.
// The tracer must be clock-less (no SetClock) so those per-shard stamps
// survive; it is shared by all workers, which is safe because Emit locks.
// Nil — the default — emits nothing, and span emission never charges
// simulated cycles, so checksums and cycle counts are bit-identical with
// spans on or off.
func WithSpanTracer(t *trace.Tracer) Option {
	return func(s *settings) { s.spanT = t }
}

// withConfig is the deprecated-adapter bridge from a Config literal.
func withConfig(cfg Config) Option {
	return func(s *settings) { s.Config = cfg }
}
