package shard

import (
	"fmt"
	"sync"
	"testing"

	"regions/internal/apps/appkit"
)

// TestDoneFIFOOnPinned checks the completion-callback contract the serving
// driver depends on: pinned tasks on one shard deliver their Done calls in
// submission order, on the shard's goroutine, with contiguous monotone
// simulated-cycle windows.
func TestDoneFIFOOnPinned(t *testing.T) {
	e := NewEngine(WithShards(2))
	const n = 64
	var mu sync.Mutex
	var order []int
	var results []TaskResult
	for i := 0; i < n; i++ {
		i := i
		e.Submit(Task{
			Name:     fmt.Sprintf("t%d", i),
			Affinity: "pinned-home",
			Pin:      true,
			Run: func(env appkit.RegionEnv) uint32 {
				r := env.NewRegion()
				p := env.Ralloc(r, 16, env.SizeCleanup(16))
				env.DeleteRegion(r)
				return uint32(p)
			},
			Done: func(res TaskResult) {
				mu.Lock()
				order = append(order, i)
				results = append(results, res)
				mu.Unlock()
			},
		})
	}
	e.Close()
	if len(order) != n {
		t.Fatalf("got %d Done calls, want %d", len(order), n)
	}
	home := e.ShardFor("pinned-home")
	var prevEnd uint64
	for k, i := range order {
		if i != k {
			t.Fatalf("Done order[%d] = task %d, want FIFO", k, i)
		}
		res := results[k]
		if res.Shard != home || res.Stolen {
			t.Errorf("task %d ran on shard %d (stolen=%v), want pinned to %d", i, res.Shard, res.Stolen, home)
		}
		if res.Err != nil || res.Checksum == 0 {
			t.Errorf("task %d: err=%v checksum=%d", i, res.Err, res.Checksum)
		}
		if res.StartCycles != prevEnd {
			t.Errorf("task %d starts at cycle %d, previous ended at %d — windows must be contiguous",
				i, res.StartCycles, prevEnd)
		}
		if res.EndCycles <= res.StartCycles {
			t.Errorf("task %d consumed no cycles: [%d, %d]", i, res.StartCycles, res.EndCycles)
		}
		prevEnd = res.EndCycles
	}
}

// TestDoneSeesRunPanic checks that a panicking Run still invokes Done with
// the recorded error and a zero checksum.
func TestDoneSeesRunPanic(t *testing.T) {
	e := NewEngine(WithShards(1))
	var got TaskResult
	done := false
	e.Submit(Task{
		Name: "boom",
		Pin:  true,
		Run:  func(appkit.RegionEnv) uint32 { panic("kaput") },
		Done: func(res TaskResult) { got = res; done = true },
	})
	agg := e.Close()
	if !done {
		t.Fatal("Done not called for failed task")
	}
	if got.Err == nil || got.Checksum != 0 {
		t.Errorf("failed task result: err=%v checksum=%d, want error and 0", got.Err, got.Checksum)
	}
	if agg.Failures != 1 {
		t.Errorf("aggregate failures = %d, want 1", agg.Failures)
	}
}

// TestDonePanicRecorded checks that a panic inside Done itself is recovered
// and counted as a failure instead of killing the worker goroutine.
func TestDonePanicRecorded(t *testing.T) {
	e := NewEngine(WithShards(1))
	e.Submit(Task{
		Name: "done-boom",
		Run:  func(appkit.RegionEnv) uint32 { return 1 },
		Done: func(TaskResult) { panic("callback kaput") },
	})
	// A second task proves the worker survived the Done panic.
	ran := false
	e.Submit(Task{
		Name: "after",
		Run:  func(appkit.RegionEnv) uint32 { ran = true; return 2 },
	})
	agg := e.Close()
	if !ran {
		t.Error("worker did not survive a panicking Done callback")
	}
	if agg.Failures != 1 {
		t.Errorf("aggregate failures = %d, want 1 (the Done panic)", agg.Failures)
	}
}
