package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"regions/internal/apps/appkit"
	"regions/internal/core"
	"regions/internal/metrics"
)

// pinnedDo runs fn as a pinned task on shard i's worker goroutine — the
// only legal way for a test's main goroutine to touch a live shard's
// runtime — and returns the task's error (a recovered panic, e.g. a Fault
// or a failed assertion fn raised).
func pinnedDo(e *Engine, i int, fn func(rt *core.Runtime)) error {
	w := e.workers()[i]
	done := make(chan error, 1)
	e.submitTo(w, Task{
		Name: "test-pinned",
		Pin:  true,
		Run: func(appkit.RegionEnv) uint32 {
			fn(w.env.Runtime())
			return 0
		},
		Done: func(res TaskResult) { done <- res.Err },
	})
	return <-done
}

// registerSizeCleanups registers the named size cleanups on every live
// shard, the precondition ImportRegion places on a receiving runtime: ids
// are remapped by name, so every name a record uses must exist everywhere a
// region may land. Real drivers do this once at startup (and again on
// grown shards); see internal/serve.
func registerSizeCleanups(t *testing.T, e *Engine, sizes ...int) {
	t.Helper()
	for i := range e.workers() {
		if err := pinnedDo(e, i, func(rt *core.Runtime) {
			for _, s := range sizes {
				rt.SizeCleanup(s)
			}
		}); err != nil {
			t.Fatalf("register cleanups on shard %d: %v", i, err)
		}
	}
}

// buildChain allocates a self-contained linked list (small-int payloads,
// intra-region links only) and returns the region and its content digest.
// The head is held only host-side, so the region stays exportable.
func buildChain(rt *core.Runtime, nodes int) (*core.Region, uint32) {
	r := rt.NewRegion()
	cln := rt.SizeCleanup(8)
	var prev core.Ptr
	for i := 0; i < nodes; i++ {
		p := rt.Ralloc(r, 8, cln)
		rt.Space().Store(p, core.Word(i*3+1))
		rt.StorePtr(p+4, prev)
		prev = p
	}
	return r, rt.ContentChecksum(r)
}

// TestMigrateRegionMovesState is the point-to-point tentpole check: a
// region built on shard 0 moves to shard 1 with its content digest intact,
// stays fully usable there, and the stale donor handle faults with
// FaultMigratedRegion. Both runtimes Verify inside the migration tasks
// themselves (exportOn/importOn), so a clean return already proves the
// invariants held on each side.
func TestMigrateRegionMovesState(t *testing.T) {
	eng := NewEngine(WithShards(2))
	defer eng.Close()
	registerSizeCleanups(t, eng, 8)

	var r *core.Region
	var want uint32
	if err := pinnedDo(eng, 0, func(rt *core.Runtime) {
		r, want = buildChain(rt, 40)
	}); err != nil {
		t.Fatalf("build: %v", err)
	}

	m, err := eng.MigrateRegion(r, 0, 1)
	if err != nil {
		t.Fatalf("MigrateRegion: %v", err)
	}
	if m.From != 0 || m.To != 1 || m.New == nil || m.Pages != m.Rec.Pages || m.Pages == 0 {
		t.Fatalf("migration record %+v is incoherent", m)
	}
	if count, pages := eng.Migrations(); count != 1 || pages != uint64(m.Pages) {
		t.Fatalf("Migrations() = (%d, %d), want (1, %d)", count, pages, m.Pages)
	}

	if err := pinnedDo(eng, 1, func(rt *core.Runtime) {
		if got := rt.ContentChecksum(m.New); got != want {
			panic(fmt.Sprintf("content digest %#x after migration, want %#x", got, want))
		}
		// The region is live property of shard 1 now: grow it, then delete it.
		p := rt.Ralloc(m.New, 8, rt.SizeCleanup(8))
		rt.Space().Store(p, 7)
		if !rt.DeleteRegion(m.New) {
			panic("imported region not deletable")
		}
	}); err != nil {
		t.Fatalf("receiver-side use: %v", err)
	}

	if err := pinnedDo(eng, 0, func(rt *core.Runtime) {
		_, err := rt.TryRalloc(r, 8, rt.SizeCleanup(8))
		var f *core.Fault
		if !errors.As(err, &f) || f.Kind != core.FaultMigratedRegion {
			panic(fmt.Sprintf("stale handle error %v, want FaultMigratedRegion", err))
		}
	}); err != nil {
		t.Fatalf("donor-side staleness: %v", err)
	}
}

// TestMigrateRegionValidation covers the fail-fast surface: bad shard
// indexes, donor == receiver, and a non-quiescent region (externally
// referenced) that must survive the refused export untouched.
func TestMigrateRegionValidation(t *testing.T) {
	eng := NewEngine(WithShards(2))
	defer eng.Close()

	if _, err := eng.MigrateRegion(nil, 0, 5); err == nil {
		t.Fatal("out-of-range receiver accepted")
	}
	if _, err := eng.MigrateRegion(nil, -1, 1); err == nil {
		t.Fatal("out-of-range donor accepted")
	}
	if _, err := eng.MigrateRegion(nil, 1, 1); err == nil {
		t.Fatal("donor == receiver accepted")
	}

	var pinnedRegion *core.Region
	if err := pinnedDo(eng, 0, func(rt *core.Runtime) {
		a := rt.NewRegion()
		b := rt.NewRegion()
		p := rt.Ralloc(a, 8, rt.SizeCleanup(8))
		q := rt.Ralloc(b, 8, rt.SizeCleanup(8))
		rt.StorePtr(p, q) // a holds a live reference into b
		pinnedRegion = b
	}); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if _, err := eng.MigrateRegion(pinnedRegion, 0, 1); !errors.Is(err, core.ErrExportReferenced) {
		t.Fatalf("referenced region export error %v, want ErrExportReferenced", err)
	}
	if err := pinnedDo(eng, 0, func(rt *core.Runtime) {
		if pinnedRegion.Deleted() {
			panic("refused export deleted the region")
		}
		rt.Ralloc(pinnedRegion, 8, rt.SizeCleanup(8))
		if err := rt.Verify(); err != nil {
			panic(err)
		}
	}); err != nil {
		t.Fatalf("region unusable after refused export: %v", err)
	}
}

// TestMigrateUnderLoad is the randomized tentpole gate: a long-lived region
// hops donor→receiver repeatedly while unpinned work races on every shard,
// with Verify running on donor and receiver inside each hop; the digest
// must survive every hop and the engine's summed checksum must be
// bit-identical to the same task set run with migration off.
func TestMigrateUnderLoad(t *testing.T) {
	const shards = 4
	rng := rand.New(rand.NewSource(11))
	tasks := randomTasks(rng, 160)

	run := func(migrate bool) uint32 {
		eng := NewEngine(WithShards(shards))
		registerSizeCleanups(t, eng, 8)
		var r *core.Region
		var want uint32
		if err := pinnedDo(eng, 0, func(rt *core.Runtime) {
			r, want = buildChain(rt, 64)
		}); err != nil {
			t.Fatalf("build: %v", err)
		}
		// Feed the load in slices so migrations genuinely interleave with
		// task execution rather than running before or after it.
		slice := len(tasks) / 8
		at := 0
		feed := func() {
			if at < len(tasks) {
				end := at + slice
				if end > len(tasks) {
					end = len(tasks)
				}
				eng.SubmitBatch(tasks[at:end])
				at = end
			}
		}
		feed()
		if migrate {
			cur := 0
			for hop := 0; hop < 7; hop++ {
				feed()
				next := (cur + 1 + hop%(shards-1)) % shards
				if next == cur {
					next = (cur + 1) % shards
				}
				m, err := eng.MigrateRegion(r, cur, next)
				if err != nil {
					t.Fatalf("hop %d (%d→%d): %v", hop, cur, next, err)
				}
				r, cur = m.New, next
				if err := pinnedDo(eng, cur, func(rt *core.Runtime) {
					if got := rt.ContentChecksum(r); got != want {
						panic(fmt.Sprintf("hop %d: digest %#x, want %#x", hop, got, want))
					}
				}); err != nil {
					t.Fatalf("hop %d digest check: %v", hop, err)
				}
			}
			if count, _ := eng.Migrations(); count != 7 {
				t.Fatalf("Migrations() count = %d, want 7", count)
			}
		}
		for at < len(tasks) {
			feed()
		}
		// Delete the traveler wherever it ended up so every heap drains clean.
		home := 0
		if migrate {
			found := false
			for i := range eng.workers() {
				var owned bool
				if err := pinnedDo(eng, i, func(rt *core.Runtime) {
					for _, lr := range rt.LiveRegions() {
						if lr == r {
							owned = true
						}
					}
				}); err != nil {
					t.Fatalf("owner scan: %v", err)
				}
				if owned {
					home, found = i, true
					break
				}
			}
			if !found {
				t.Fatal("traveler region owned by no shard after its hops")
			}
		}
		if err := pinnedDo(eng, home, func(rt *core.Runtime) {
			if !rt.DeleteRegion(r) {
				panic("traveler region not deletable")
			}
			if err := rt.Verify(); err != nil {
				panic(err)
			}
		}); err != nil {
			t.Fatalf("final delete: %v", err)
		}
		agg := eng.Close()
		if agg.Failures != 0 {
			t.Fatalf("%d task failures (migrate=%v)", agg.Failures, migrate)
		}
		if agg.Tasks < uint64(len(tasks)) {
			t.Fatalf("ran %d tasks, want at least %d", agg.Tasks, len(tasks))
		}
		return agg.Checksum
	}

	if on, off := run(true), run(false); on != off {
		t.Fatalf("summed checksum with migration on = %#x, off = %#x: migration leaked into results", on, off)
	}
}

// TestResizeGrowAndShrink exercises both directions live: grow 2→4 with
// work landing on the new shards, then shrink 4→1 with every resident
// region evacuated into the survivor, digests intact, and retired shards'
// stats joining the Close aggregate.
func TestResizeGrowAndShrink(t *testing.T) {
	eng := NewEngine(WithShards(2))

	type traveler struct {
		r    *core.Region
		want uint32
	}
	var tr [2]traveler
	for i := range tr {
		i := i
		if err := pinnedDo(eng, i, func(rt *core.Runtime) {
			tr[i].r, tr[i].want = buildChain(rt, 24+8*i)
		}); err != nil {
			t.Fatalf("build on shard %d: %v", i, err)
		}
	}

	migs, err := eng.Resize(4)
	if err != nil || len(migs) != 0 {
		t.Fatalf("grow: migs=%v err=%v", migs, err)
	}
	if eng.Shards() != 4 {
		t.Fatalf("Shards() = %d after grow, want 4", eng.Shards())
	}
	// Pin one task directly onto each grown shard and confirm it runs there.
	done := make(chan int, 2)
	for i := 2; i < 4; i++ {
		tk := workTask(uint32(i), 8)
		tk.Pin = true
		tk.Done = func(res TaskResult) { done <- res.Shard }
		e := eng
		e.submitTo(e.workers()[i], tk)
	}
	got := map[int]bool{<-done: true, <-done: true}
	if !got[2] || !got[3] {
		t.Fatalf("pinned tasks ran on shards %v, want the grown shards 2 and 3", got)
	}

	migs, err = eng.Resize(1)
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if eng.Shards() != 1 {
		t.Fatalf("Shards() = %d after shrink, want 1", eng.Shards())
	}
	// Shard 1's traveler must have been evacuated into shard 0; shard 0's
	// never moved.
	moved := map[*core.Region]*Migration{}
	for i := range migs {
		moved[migs[i].Old] = &migs[i]
	}
	m1 := moved[tr[1].r]
	if m1 == nil {
		t.Fatalf("shard 1's region was not evacuated (migrations: %v)", migs)
	}
	if m1.To != 0 || m1.From != 1 {
		t.Fatalf("evacuation went %d→%d, want 1→0", m1.From, m1.To)
	}
	if err := pinnedDo(eng, 0, func(rt *core.Runtime) {
		if got := rt.ContentChecksum(m1.New); got != tr[1].want {
			panic(fmt.Sprintf("evacuated digest %#x, want %#x", got, tr[1].want))
		}
		if got := rt.ContentChecksum(tr[0].r); got != tr[0].want {
			panic(fmt.Sprintf("resident digest %#x, want %#x", got, tr[0].want))
		}
		if !rt.DeleteRegion(m1.New) || !rt.DeleteRegion(tr[0].r) {
			panic("post-shrink regions not deletable")
		}
		if err := rt.Verify(); err != nil {
			panic(err)
		}
	}); err != nil {
		t.Fatalf("survivor-side checks: %v", err)
	}

	if _, err := eng.Resize(0); err == nil {
		t.Fatal("Resize(0) accepted")
	}

	agg := eng.Close()
	if agg.Shards != 1 {
		t.Fatalf("aggregate Shards = %d, want 1", agg.Shards)
	}
	if len(agg.PerShard) != 4 {
		t.Fatalf("aggregate PerShard has %d entries, want 4 (retired included)", len(agg.PerShard))
	}
	for i, s := range agg.PerShard {
		if s.Shard != i {
			t.Fatalf("PerShard[%d].Shard = %d, want sorted ids", i, s.Shard)
		}
	}
	var perShardTasks uint64
	for _, s := range agg.PerShard {
		perShardTasks += s.Tasks
	}
	if perShardTasks != agg.Tasks {
		t.Fatalf("per-shard tasks sum %d != aggregate %d", perShardTasks, agg.Tasks)
	}
}

// TestCoordinatorMigratesOnSkew drives one shard hot with pinned work while
// its sibling idles and waits for the coordinator to move the hot shard's
// resident region over, proving the busy-counter watch path end to end.
func TestCoordinatorMigratesOnSkew(t *testing.T) {
	reg := metrics.NewRegistry()
	movedCh := make(chan Migration, 4)
	eng := NewEngine(WithShards(2), WithMetrics(reg), WithMigration(MigrationConfig{
		Enabled:        true,
		Interval:       time.Millisecond,
		SustainedPolls: 2,
		MaxMoves:       1,
		OnMigrate:      func(m Migration) { movedCh <- m },
	}))
	registerSizeCleanups(t, eng, 8)

	if err := pinnedDo(eng, 0, func(rt *core.Runtime) {
		r, _ := buildChain(rt, 128)
		_ = r
	}); err != nil {
		t.Fatalf("build: %v", err)
	}

	// Pinned work keyed to home on shard 0, where the region lives.
	key := "hot"
	for i := 0; eng.ShardFor(key) != 0; i++ {
		key = fmt.Sprintf("hot-%d", i)
	}
	hot := func() Task {
		tk := workTask(1, 64)
		tk.Pin = true
		tk.Affinity = key
		return tk
	}

	deadline := time.After(5 * time.Second)
	var m Migration
loop:
	for {
		select {
		case m = <-movedCh:
			break loop
		case <-deadline:
			t.Fatal("coordinator never migrated despite sustained skew")
		default:
			eng.Submit(hot())
		}
	}
	if m.From != 0 || m.To != 1 || m.Pages == 0 {
		t.Fatalf("coordinator migration %+v, want a move 0→1", m)
	}
	agg := eng.Close()
	if agg.Failures != 0 {
		t.Fatalf("%d failures", agg.Failures)
	}
	snap := reg.Snapshot()
	if c, ok := snap.Counter("regions_migrations_total"); !ok || c == 0 {
		t.Fatalf("regions_migrations_total = %d (present=%v), want > 0", c, ok)
	}
	if c, ok := snap.Counter("regions_migrated_pages_total"); !ok || c == 0 {
		t.Fatalf("regions_migrated_pages_total = %d (present=%v), want > 0", c, ok)
	}
}
