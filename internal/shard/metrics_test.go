package shard

import (
	"bytes"
	"fmt"
	"testing"

	"regions/internal/metrics"
)

// TestMetricsUnderConcurrentScrape is the observability race test: four
// shards churn allocations while a scraper loop snapshots the shared
// registry and renders it, exactly what a live /metrics endpoint does
// mid-run. Run under -race in CI.
func TestMetricsUnderConcurrentScrape(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.SetSiteSampling(16)
	eng := NewEngine(WithShards(4), WithMetrics(reg), WithHeapProfileEvery(8))

	stop := make(chan struct{})
	scraperDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				scraperDone <- nil
				return
			default:
				if err := metrics.WritePrometheus(bytes.NewBuffer(nil), reg.Snapshot()); err != nil {
					scraperDone <- err
					return
				}
				eng.HeapReports() // concurrent heap-profile reads must be safe too
			}
		}
	}()

	const tasks = 256
	for i := 0; i < tasks; i++ {
		eng.Submit(simpleTask(uint32(i)))
	}
	agg := eng.Close()
	close(stop)
	if err := <-scraperDone; err != nil {
		t.Fatal(err)
	}
	if agg.Failures != 0 {
		t.Fatalf("%d task failures", agg.Failures)
	}

	snap := reg.Snapshot()
	if got := snap.CounterSum("regions_shard_tasks_total"); got != tasks {
		t.Errorf("shard task counters sum to %d, want %d", got, tasks)
	}
	// Each simple task performs 32 rallocs.
	if got, _ := snap.Counter("regions_core_allocs_total"); got != tasks*32 {
		t.Errorf("regions_core_allocs_total = %d, want %d", got, tasks*32)
	}
	if got, _ := snap.Counter("regions_core_regions_created_total"); got != tasks {
		t.Errorf("regions created = %d, want %d", got, tasks)
	}
	if v, ok := snap.Gauge("regions_shard_makespan_cycles"); !ok || v <= 0 {
		t.Errorf("makespan gauge = %d,%v after Close", v, ok)
	}
	if v, ok := snap.Gauge("regions_shard_utilization_pct"); !ok || v <= 0 || v > 100 {
		t.Errorf("utilization gauge = %d,%v, want in (0,100]", v, ok)
	}
	for i := 0; i < eng.Shards(); i++ {
		name := fmt.Sprintf(`regions_shard_queue_depth{shard="%d"}`, i)
		if v, _ := snap.Gauge(name); v != 0 {
			t.Errorf("shard %d queue depth = %d after drain, want 0", i, v)
		}
	}
	if reps := eng.HeapReports(); len(reps) != eng.Shards() {
		t.Errorf("HeapReports returned %d profiles, want %d", len(reps), eng.Shards())
	} else {
		for _, rep := range reps {
			if rep.Origin == "" || rep.SchemaVersion != metrics.HeapSchemaVersion {
				t.Errorf("heap report origin=%q schema=%d", rep.Origin, rep.SchemaVersion)
			}
		}
	}
}
