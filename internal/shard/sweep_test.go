package shard

import (
	"bytes"
	"testing"
	"time"

	"regions/internal/apps/appkit"
	"regions/internal/metrics"
)

// blobTask is a request that allocates multi-page blobs in a fresh region,
// folds them into a checksum, and deletes the region. Under DeferredDelete
// the delete only detaches the pages; the worker's idle loop and the
// close-time drain sweep them behind later tasks.
func blobTask(seed uint32) Task {
	return Task{
		Name: "blob",
		Run: func(e appkit.RegionEnv) uint32 {
			sp := e.Space()
			r := e.NewRegion()
			cln := e.SizeCleanup(16)
			sum := seed
			for i := 0; i < 3; i++ {
				b := e.RstrAlloc(r, 8000)
				sp.Store(b, seed+uint32(i))
				sum = sum*31 + sp.Load(b)
			}
			p := e.Ralloc(r, 16, cln)
			sp.Store(p, sum)
			sum = sum*31 + sp.Load(p)
			if !e.DeleteRegion(r) {
				panic("blob task: region not deletable")
			}
			return sum
		},
	}
}

// TestDeferredSweepRacesDeletes races task-driven deletions against the
// background sweeper under the race detector, in the two interleavings that
// matter: a flooded submission where workers never go idle (debt is
// cancelled by reuse or drained at close) and a paced submission whose idle
// gaps let the sweeper poison pages between tasks. A shared metrics
// registry is scraped concurrently throughout, like a live /metrics
// endpoint. Both deferred interleavings must produce the synchronous run's
// checksum, end with zero debt, and leave every shard's heap invariants
// intact.
func TestDeferredSweepRacesDeletes(t *testing.T) {
	const tasks = 240
	run := func(deferred, paced bool) uint32 {
		reg := metrics.NewRegistry()
		engOpts := []Option{WithShards(4), WithMetrics(reg), WithIdleSweep(deferred)}
		if deferred {
			engOpts = append(engOpts, WithDeferredDelete(2, 0))
		}
		eng := NewEngine(engOpts...)
		stop := make(chan struct{})
		scraperDone := make(chan error, 1)
		go func() {
			for {
				select {
				case <-stop:
					scraperDone <- nil
					return
				default:
					if err := metrics.WritePrometheus(bytes.NewBuffer(nil), reg.Snapshot()); err != nil {
						scraperDone <- err
						return
					}
				}
			}
		}()
		for i := 0; i < tasks; i++ {
			eng.Submit(blobTask(uint32(i)))
			if paced && i%8 == 7 {
				time.Sleep(time.Millisecond) // idle window: the sweeper runs
			}
		}
		agg := eng.Close()
		close(stop)
		if err := <-scraperDone; err != nil {
			t.Fatalf("scraper (deferred=%v paced=%v): %v", deferred, paced, err)
		}
		if agg.Tasks != tasks || agg.Failures != 0 {
			t.Fatalf("deferred=%v paced=%v: ran %d tasks with %d failures", deferred, paced, agg.Tasks, agg.Failures)
		}
		var swept uint64
		for i := 0; i < eng.Shards(); i++ {
			rt := eng.Env(i).Runtime()
			if d := rt.SweepDebt(); d != 0 {
				t.Fatalf("deferred=%v paced=%v: shard %d holds %d pages of sweep debt after Close", deferred, paced, i, d)
			}
			if err := rt.Verify(); err != nil {
				t.Fatalf("deferred=%v paced=%v: shard %d invariants: %v", deferred, paced, i, err)
			}
			swept += rt.SweptPages()
		}
		if deferred && swept == 0 {
			t.Fatalf("paced=%v: deferred run swept no pages; deferral never engaged", paced)
		}
		for _, s := range agg.PerShard {
			if s.SweepDebtPeak < 0 {
				t.Fatalf("negative sweep-debt peak %d", s.SweepDebtPeak)
			}
		}
		return agg.Checksum
	}

	want := run(false, false)
	if got := run(true, false); got != want {
		t.Fatalf("flooded deferred checksum %#x, sync %#x — deferral changed results", got, want)
	}
	if got := run(true, true); got != want {
		t.Fatalf("paced deferred checksum %#x, sync %#x — idle sweeping changed results", got, want)
	}
}
