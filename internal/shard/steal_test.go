package shard

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"regions/internal/apps/appkit"
)

// workTask is simpleTask with a controllable object count, so randomized
// mixes contain genuinely unequal amounts of simulated work.
func workTask(seed uint32, objs int) Task {
	return Task{
		Name: "work",
		Run: func(e appkit.RegionEnv) uint32 {
			sp := e.Space()
			r := e.NewRegion()
			cln := e.SizeCleanup(16)
			sum := seed
			for i := 0; i < objs; i++ {
				p := e.Ralloc(r, 16, cln)
				sp.Store(p, seed+uint32(i))
				sum = sum*31 + sp.Load(p)
			}
			if !e.DeleteRegion(r) {
				panic("work task: region not deletable")
			}
			return sum
		},
	}
}

// randomTasks builds a reproducible mix of plain round-robin tasks,
// affinity-keyed stealable tasks, and pinned tasks, with object counts
// spanning two orders of magnitude. Each task is self-contained, so the
// summed checksum is a pure function of the task set.
func randomTasks(rng *rand.Rand, n int) []Task {
	tasks := make([]Task, 0, n)
	for i := 0; i < n; i++ {
		tk := workTask(rng.Uint32(), 1+rng.Intn(96))
		switch rng.Intn(4) {
		case 0:
			tk.Affinity = fmt.Sprintf("key-%d", rng.Intn(5))
		case 1:
			tk.Affinity = fmt.Sprintf("pin-%d", rng.Intn(3))
			tk.Pin = true
		}
		tasks = append(tasks, tk)
	}
	return tasks
}

// TestStealingKeepsChecksumAndDrains is the scheduler's determinism gate:
// randomized task mixes run at 1, 2, 4, and 8 shards with stealing enabled
// must drain completely and produce the single-shard checksum, whatever
// placement stealing improvised. Every shard's heap invariants must hold
// after the run.
func TestStealingKeepsChecksumAndDrains(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		tasks := randomTasks(rand.New(rand.NewSource(seed)), 200)
		var want uint32
		for shardsIdx, n := range []int{1, 2, 4, 8} {
			eng := NewEngine(WithShards(n))
			eng.SubmitBatch(tasks)
			agg := eng.Close()
			if agg.Tasks != uint64(len(tasks)) {
				t.Fatalf("seed %d shards %d: ran %d tasks, want %d", seed, n, agg.Tasks, len(tasks))
			}
			if agg.Failures != 0 {
				t.Fatalf("seed %d shards %d: %d failures", seed, n, agg.Failures)
			}
			for i, w := range eng.workers() {
				if err := w.env.Runtime().Verify(); err != nil {
					t.Fatalf("seed %d shards %d: shard %d invariants: %v", seed, n, i, err)
				}
			}
			if shardsIdx == 0 {
				want = agg.Checksum
				continue
			}
			if agg.Checksum != want {
				t.Fatalf("seed %d: checksum at %d shards = %#x, want %#x (stealing changed results)",
					seed, n, agg.Checksum, want)
			}
		}
	}
}

// TestImbalancedWorkloadIsStolen homes every task on one shard, unpinned:
// the other three workers have nothing of their own and must steal. Verifies
// steals are counted coherently and that the load actually spread.
func TestImbalancedWorkloadIsStolen(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("stealing needs a sibling worker actually running")
	}
	eng := NewEngine(WithShards(4))
	home := eng.ShardFor("hot")
	const tasks = 48
	for i := 0; i < tasks; i++ {
		tk := workTask(uint32(i), 128)
		tk.Affinity = "hot"
		eng.Submit(tk)
	}
	agg := eng.Close()
	if agg.Failures != 0 || agg.Tasks != tasks {
		t.Fatalf("tasks=%d failures=%d, want %d/0", agg.Tasks, agg.Failures, tasks)
	}
	if agg.Steals == 0 {
		t.Fatal("no steals on a fully imbalanced workload")
	}
	var perShard uint64
	busy := 0
	for _, s := range agg.PerShard {
		perShard += s.Steals
		if s.Tasks > 0 {
			busy++
		}
	}
	if perShard != agg.Steals {
		t.Fatalf("per-shard steals sum to %d, aggregate says %d", perShard, agg.Steals)
	}
	if agg.PerShard[home].Steals != 0 {
		t.Fatalf("home shard %d 'stole' %d of its own tasks", home, agg.PerShard[home].Steals)
	}
	if busy < 2 {
		t.Fatalf("stealing left the load on %d shard(s)", busy)
	}
}

// TestNoStealKeepsTasksHome pins down the A/B control: with Config.NoSteal
// the engine is the old static-placement scheduler — zero steals, and an
// imbalanced workload stays exactly where affinity put it.
func TestNoStealKeepsTasksHome(t *testing.T) {
	eng := NewEngine(WithShards(4), WithNoSteal())
	home := eng.ShardFor("hot")
	const tasks = 24
	for i := 0; i < tasks; i++ {
		tk := workTask(uint32(i), 16)
		tk.Affinity = "hot"
		eng.Submit(tk)
	}
	agg := eng.Close()
	if agg.Failures != 0 {
		t.Fatalf("%d failures", agg.Failures)
	}
	if agg.Steals != 0 {
		t.Fatalf("NoSteal engine recorded %d steals", agg.Steals)
	}
	for i, s := range agg.PerShard {
		want := uint64(0)
		if i == home {
			want = tasks
		}
		if s.Tasks != want {
			t.Fatalf("shard %d ran %d tasks, want %d under NoSteal", i, s.Tasks, want)
		}
	}
}

// TestPanicIsolationUnderStealing runs a burst of faulting tasks through a
// stealing engine: wherever each panic lands, that shard must recover, keep
// its heap invariants, and the healthy tasks' checksum must be unaffected.
func TestPanicIsolationUnderStealing(t *testing.T) {
	goodChecksum := func(shards int, opts ...Option) uint32 {
		eng := NewEngine(append([]Option{WithShards(shards)}, opts...)...)
		for i := 0; i < 32; i++ {
			eng.Submit(simpleTask(uint32(i)))
		}
		agg := eng.Close()
		if agg.Failures != 0 {
			t.Fatalf("control run failed")
		}
		return agg.Checksum
	}
	want := goodChecksum(1)

	eng := NewEngine(WithShards(4))
	const bad = 8
	for i := 0; i < bad; i++ {
		eng.Submit(Task{
			Name:     "bad",
			Affinity: "hot", // all homed together so some panics run stolen
			Run: func(e appkit.RegionEnv) uint32 {
				r := e.NewRegion()
				e.DeleteRegion(r)
				e.DeleteRegion(r) // double delete: *Fault panic
				return 0
			},
		})
	}
	for i := 0; i < 32; i++ {
		eng.Submit(simpleTask(uint32(i)))
	}
	agg := eng.Close()
	if agg.Failures != bad {
		t.Fatalf("failures = %d, want %d", agg.Failures, bad)
	}
	if agg.Tasks != bad+32 {
		t.Fatalf("tasks = %d, want %d", agg.Tasks, bad+32)
	}
	if agg.Checksum != want {
		t.Fatalf("healthy checksum %#x, want %#x: a panic leaked into results", agg.Checksum, want)
	}
	for i, w := range eng.workers() {
		if err := w.env.Runtime().Verify(); err != nil {
			t.Fatalf("shard %d invariants violated after recovered panics: %v", i, err)
		}
	}
}
