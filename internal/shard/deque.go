package shard

import "sync"

// deque is a bounded double-ended task queue over a fixed ring buffer, the
// per-shard structure behind the work-stealing scheduler. The owning worker
// pushes and pops at the back (LIFO, so it keeps working the tasks it was
// most recently given); submitters also push at the back; thieves take from
// the front (FIFO, so a steal grabs the task that has waited longest and is
// least likely to be in anyone's working set). A mutex rather than a
// lock-free protocol: tasks here are whole app runs, so queue operations
// are nowhere near the contention point, and a mutex keeps push/pop/steal
// trivially race-clean under every interleaving.
type deque struct {
	mu    sync.Mutex
	buf   []Task
	head  int // index of the front element when count > 0
	count int
}

func newDeque(capacity int) deque {
	return deque{buf: make([]Task, capacity)}
}

// push appends t at the back; it reports false when the deque is full.
func (d *deque) push(t Task) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.count == len(d.buf) {
		return false
	}
	d.buf[(d.head+d.count)%len(d.buf)] = t
	d.count++
	return true
}

// pushN appends as many of ts as fit at the back, in order, and returns how
// many it took — the batched-injection path, one lock round for a whole
// group of tasks.
func (d *deque) pushN(ts []Task) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.buf) - d.count
	if n > len(ts) {
		n = len(ts)
	}
	for i := 0; i < n; i++ {
		d.buf[(d.head+d.count)%len(d.buf)] = ts[i]
		d.count++
	}
	return n
}

// popBack removes and returns the back (newest) element — the owner's LIFO
// pop.
func (d *deque) popBack() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.count == 0 {
		return Task{}, false
	}
	i := (d.head + d.count - 1) % len(d.buf)
	t := d.buf[i]
	d.buf[i] = Task{} // drop references so completed tasks can be collected
	d.count--
	return t, true
}

// popFront removes and returns the front (oldest) element — a thief's FIFO
// steal, and the pinned queue's in-order pop.
func (d *deque) popFront() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.count == 0 {
		return Task{}, false
	}
	t := d.buf[d.head]
	d.buf[d.head] = Task{}
	d.head = (d.head + 1) % len(d.buf)
	d.count--
	return t, true
}

// full reports whether a push would fail.
func (d *deque) full() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count == len(d.buf)
}

// len returns the current element count.
func (d *deque) len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}
