// Package shard is the throughput engine: it runs N independent region
// Systems ("shards") behind a work-distributing driver, the architecture the
// ROADMAP's north star asks for. Each shard owns one simulated address
// space, one safe region runtime, and one batched free-page cache, and
// processes its tasks serially on its own goroutine; shards share nothing,
// so the engine scales with the host's cores while every shard keeps the
// paper's single-threaded fast paths (bump allocation, dense page-index
// lookup) untouched.
//
// Placement is either round-robin (throughput) or region-affinity: tasks
// submitted with the same affinity key always execute on the same shard, so
// a pipeline of tasks can share regions created by its predecessors without
// any cross-shard synchronization — the sharded analogue of the paper's
// single-machine model.
package shard

import (
	"fmt"

	"regions/internal/apps/appkit"
	"regions/internal/core"
	"regions/internal/mem"
	"regions/internal/stats"
)

// Ptr is a simulated heap address.
type Ptr = mem.Addr

// Env is one shard's region environment. It implements appkit.RegionEnv, so
// the six benchmark applications (and anything else written against the
// appkit contract) run on a shard unchanged. Unlike the per-experiment
// appkit environments, a shard Env is long-lived: its global storage grows
// segment by segment through the runtime's own allocator instead of a fixed
// reserved block, so an unbounded stream of tasks can keep allocating
// globals without exhausting anything.
type Env struct {
	name string
	sp   *mem.Space
	rt   *core.Runtime
}

// NewEnv builds a shard environment with the given core options. PageBatch
// in opts controls the shard's free-page cache; Safe is honored as given.
func NewEnv(name string, opts core.Options) *Env {
	c := &stats.Counters{}
	sp := mem.NewSpace(c)
	return &Env{name: name, sp: sp, rt: core.NewRuntimeOpts(sp, opts)}
}

// Runtime exposes the shard's region runtime (for Verify in tests and for
// diagnostics; task code should stay on the RegionEnv contract).
func (e *Env) Runtime() *core.Runtime { return e.rt }

// Name returns the shard's diagnostic name.
func (e *Env) Name() string { return e.name }

// Space returns the shard's simulated address space.
func (e *Env) Space() *mem.Space { return e.sp }

// Counters returns the shard's statistics sink.
func (e *Env) Counters() *stats.Counters { return e.sp.Counters() }

// PushFrame enters an activation with n region-pointer slots.
func (e *Env) PushFrame(n int) appkit.Frame { return e.rt.PushFrame(n) }

// PopFrame leaves the innermost activation.
func (e *Env) PopFrame() { e.rt.PopFrame() }

// Safepoint is a no-op: regions need no collection pauses.
func (e *Env) Safepoint() {}

// Finalize folds still-live regions into the statistics.
func (e *Env) Finalize() { e.rt.FinalizeStats() }

// Safe reports whether the shard maintains reference counts.
func (e *Env) Safe() bool { return e.rt.Safe() }

// NewRegion creates an empty region on this shard.
func (e *Env) NewRegion() appkit.Region { return e.rt.NewRegion() }

// DeleteRegion attempts to delete r.
func (e *Env) DeleteRegion(r appkit.Region) bool {
	return e.rt.DeleteRegion(r.(*core.Region))
}

// Ralloc allocates size bytes of cleared, scanned memory in r.
func (e *Env) Ralloc(r appkit.Region, size int, cln appkit.CleanupID) Ptr {
	return e.rt.Ralloc(r.(*core.Region), size, cln)
}

// RarrayAlloc allocates a cleared array in r.
func (e *Env) RarrayAlloc(r appkit.Region, n, elemSize int, cln appkit.CleanupID) Ptr {
	return e.rt.RarrayAlloc(r.(*core.Region), n, elemSize, cln)
}

// RstrAlloc allocates pointer-free memory in r.
func (e *Env) RstrAlloc(r appkit.Region, size int) Ptr {
	return e.rt.RstrAlloc(r.(*core.Region), size)
}

// RstrFree retires one RstrAlloc block for reuse within r.
func (e *Env) RstrFree(r appkit.Region, p Ptr, size int) {
	e.rt.RstrFree(r.(*core.Region), p, size)
}

// RegisterCleanup registers an environment-level cleanup function.
func (e *Env) RegisterCleanup(name string, fn appkit.CleanupFunc) appkit.CleanupID {
	return e.rt.RegisterCleanup(name, func(_ *core.Runtime, obj Ptr) int {
		return fn(e, obj)
	})
}

// SizeCleanup returns a cleanup for pointer-free objects of a fixed size.
func (e *Env) SizeCleanup(size int) appkit.CleanupID { return e.rt.SizeCleanup(size) }

// Destroy drops one counted reference from a dying object.
func (e *Env) Destroy(p Ptr) { e.rt.Destroy(p) }

// StorePtr writes a region pointer through the region-write barrier.
func (e *Env) StorePtr(slot, val Ptr) { e.rt.StorePtr(slot, val) }

// StoreGlobalPtr writes a region pointer through the global-write barrier.
func (e *Env) StoreGlobalPtr(slot, val Ptr) { e.rt.StoreGlobalPtr(slot, val) }

// AllocGlobals reserves nwords words of global storage. Segments grow on
// demand, so repeated tasks never exhaust a fixed reservation.
func (e *Env) AllocGlobals(nwords int) Ptr { return e.rt.AllocGlobals(nwords) }

// reset clears shard state a failed task may have left behind: any frames
// still on the shadow stack are popped so the next task starts from an
// empty stack. Regions the task leaked stay allocated (their pages are
// reclaimed only by their owner's deletion), which is safe — just unused.
func (e *Env) reset() {
	for e.rt.Depth() > 0 {
		e.rt.PopFrame()
	}
}

var _ appkit.RegionEnv = (*Env)(nil)

func shardName(i int) string { return fmt.Sprintf("shard%d", i) }
