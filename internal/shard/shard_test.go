package shard

import (
	"strings"
	"testing"

	"regions/internal/apps/appkit"
	"regions/internal/apps/tile"
)

// simpleTask allocates a few objects in a fresh region, folds them into a
// checksum, and deletes the region — a minimal request-shaped workload.
func simpleTask(seed uint32) Task {
	return Task{
		Name: "simple",
		Run: func(e appkit.RegionEnv) uint32 {
			sp := e.Space()
			r := e.NewRegion()
			cln := e.SizeCleanup(16)
			sum := seed
			for i := 0; i < 32; i++ {
				p := e.Ralloc(r, 16, cln)
				sp.Store(p, seed+uint32(i))
				sum = sum*31 + sp.Load(p)
			}
			if !e.DeleteRegion(r) {
				panic("simple task: region not deletable")
			}
			return sum
		},
	}
}

func TestEngineRunsTasksAcrossShards(t *testing.T) {
	// NoSteal pins the engine to its static placement: the point here is
	// that round-robin homes spread work over every shard. (With stealing
	// enabled a fast worker may legitimately drain its siblings' deques
	// before they start; TestStealingKeepsChecksumAndDrains covers that.)
	eng := NewEngine(WithShards(4), WithNoSteal())
	const tasks = 64
	for i := 0; i < tasks; i++ {
		eng.Submit(simpleTask(uint32(i)))
	}
	agg := eng.Close()
	if agg.Tasks != tasks {
		t.Fatalf("ran %d tasks, want %d", agg.Tasks, tasks)
	}
	if agg.Failures != 0 {
		t.Fatalf("%d failures, first: %v", agg.Failures, agg.PerShard)
	}
	busy := 0
	for _, s := range agg.PerShard {
		if s.Tasks > 0 {
			busy++
		}
	}
	if busy != 4 {
		t.Fatalf("round-robin left shards idle: %d/4 busy", busy)
	}
	for i, w := range eng.workers() {
		if err := w.env.Runtime().Verify(); err != nil {
			t.Fatalf("shard %d invariants violated after run: %v", i, err)
		}
	}
}

func TestChecksumIsPlacementIndependent(t *testing.T) {
	run := func(shards int) uint32 {
		eng := NewEngine(WithShards(shards))
		for i := 0; i < 24; i++ {
			eng.Submit(simpleTask(uint32(i * 7)))
		}
		agg := eng.Close()
		if agg.Failures != 0 {
			t.Fatalf("failures at %d shards", shards)
		}
		return agg.Checksum
	}
	want := run(1)
	for _, n := range []int{2, 4, 8} {
		if got := run(n); got != want {
			t.Fatalf("checksum at %d shards = %#x, want %#x", n, got, want)
		}
	}
}

func TestAffinityTasksShareAShard(t *testing.T) {
	eng := NewEngine(WithShards(4))
	// The first task of the pipeline creates a region and leaves it live;
	// the second, sharing its affinity key and pinned (affinity alone is a
	// soft preference under work stealing), allocates in it and deletes
	// it. This only works if both run, in order, on one runtime.
	var shared appkit.Region
	eng.Submit(Task{
		Name:     "produce",
		Affinity: "pipeline-1",
		Pin:      true,
		Run: func(e appkit.RegionEnv) uint32 {
			shared = e.NewRegion()
			e.RstrAlloc(shared, 64)
			return 1
		},
	})
	eng.Submit(Task{
		Name:     "consume",
		Affinity: "pipeline-1",
		Pin:      true,
		Run: func(e appkit.RegionEnv) uint32 {
			e.RstrAlloc(shared, 64)
			if !e.DeleteRegion(shared) {
				panic("consume: region not deletable")
			}
			return 2
		},
	})
	agg := eng.Close()
	if agg.Failures != 0 {
		for _, s := range agg.PerShard {
			if s.LastError != "" {
				t.Log(s.LastError)
			}
		}
		t.Fatal("affinity pipeline failed")
	}
	if agg.Checksum != 3 {
		t.Fatalf("checksum %#x, want 3", agg.Checksum)
	}
}

func TestTaskPanicIsIsolatedAndStackReset(t *testing.T) {
	eng := NewEngine(WithShards(1))
	eng.Submit(Task{
		Name: "bad",
		Run: func(e appkit.RegionEnv) uint32 {
			e.PushFrame(2) // left on the stack when the panic unwinds
			r := e.NewRegion()
			e.DeleteRegion(r)
			e.DeleteRegion(r) // double delete: *Fault panic
			return 0
		},
	})
	eng.Submit(simpleTask(99))
	agg := eng.Close()
	if agg.Failures != 1 {
		t.Fatalf("failures = %d, want 1", agg.Failures)
	}
	if agg.Tasks != 2 {
		t.Fatalf("tasks = %d, want 2", agg.Tasks)
	}
	if !strings.Contains(agg.PerShard[0].LastError, "deleted-region") {
		t.Fatalf("LastError = %q, want deleted-region fault", agg.PerShard[0].LastError)
	}
	if got := eng.workers()[0].env.Runtime().Depth(); got != 0 {
		t.Fatalf("shadow stack depth after reset = %d, want 0", got)
	}
	if err := eng.workers()[0].env.Runtime().Verify(); err != nil {
		t.Fatalf("invariants violated after recovery: %v", err)
	}
}

// TestAppOnShardMatchesDedicatedEnv runs a real benchmark app on a shard
// environment twice in a row and checks both runs compute the same checksum
// as a dedicated appkit environment — the shard env is a faithful, reusable
// host for the paper's applications.
func TestAppOnShardMatchesDedicatedEnv(t *testing.T) {
	app := tile.App()
	scale := app.DefaultScale / 48
	if scale < 1 {
		scale = 1
	}
	want := app.Region(appkit.NewRegionEnv("safe", appkit.Config{}), scale)

	eng := NewEngine(WithShards(1))
	var got [2]uint32
	for i := range got {
		i := i
		eng.Submit(Task{
			Name: "tile",
			Run: func(e appkit.RegionEnv) uint32 {
				got[i] = app.Region(e, scale)
				return got[i]
			},
		})
	}
	agg := eng.Close()
	if agg.Failures != 0 {
		t.Fatalf("app task failed: %v", agg.PerShard[0].LastError)
	}
	for i, g := range got {
		if g != want {
			t.Fatalf("run %d checksum %#x, want %#x", i, g, want)
		}
	}
	if err := eng.workers()[0].env.Runtime().Verify(); err != nil {
		t.Fatalf("shard invariants violated after app runs: %v", err)
	}
}

func TestShardForIsStable(t *testing.T) {
	eng := NewEngine(WithShards(8))
	defer eng.Close()
	for _, key := range []string{"a", "b", "pipeline-1", "pipeline-2"} {
		first := eng.ShardFor(key)
		for i := 0; i < 4; i++ {
			if got := eng.ShardFor(key); got != first {
				t.Fatalf("ShardFor(%q) unstable: %d then %d", key, first, got)
			}
		}
	}
}
