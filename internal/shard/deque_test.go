package shard

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"regions/internal/apps/appkit"
)

// idTask wraps an integer so conservation tests can checksum what crossed
// the deque without running real region work.
func idTask(id uint32) Task {
	return Task{Run: func(appkit.RegionEnv) uint32 { return id }}
}

func runID(t Task) uint32 { return t.Run(nil) }

func TestDequeSequentialSemantics(t *testing.T) {
	d := newDeque(4)
	for i := uint32(0); i < 4; i++ {
		if !d.push(idTask(i)) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if d.push(idTask(99)) {
		t.Fatal("push succeeded on a full deque")
	}
	if !d.full() || d.len() != 4 {
		t.Fatalf("full=%v len=%d, want full 4", d.full(), d.len())
	}
	// Owner pops the back: newest first.
	if tk, ok := d.popBack(); !ok || runID(tk) != 3 {
		t.Fatalf("popBack = %v %v, want task 3", tk, ok)
	}
	// Thief pops the front: oldest first.
	if tk, ok := d.popFront(); !ok || runID(tk) != 0 {
		t.Fatalf("popFront = %v %v, want task 0", tk, ok)
	}
	// pushN takes only what fits, and the ring wraps around head.
	if n := d.pushN([]Task{idTask(4), idTask(5), idTask(6)}); n != 2 {
		t.Fatalf("pushN took %d, want 2", n)
	}
	for i, want := range []uint32{1, 2, 4, 5} {
		tk, ok := d.popFront()
		if !ok || runID(tk) != want {
			t.Fatalf("drain[%d] = %v %v, want task %d", i, tk, ok, want)
		}
	}
	if _, ok := d.popFront(); ok {
		t.Fatal("popFront succeeded on an empty deque")
	}
	if _, ok := d.popBack(); ok {
		t.Fatal("popBack succeeded on an empty deque")
	}
}

// TestDequeConcurrentOwnerAndThieves hammers one bounded deque from a
// batching submitter, an owner popping the back, and two thieves popping the
// front — the exact concurrent access pattern the engine produces. Run under
// -race this is the scheduler's memory-safety gate; the checksum proves
// every task is delivered exactly once regardless of interleaving.
func TestDequeConcurrentOwnerAndThieves(t *testing.T) {
	const total = 4000
	d := newDeque(32)
	var popped, sum atomic.Uint64
	done := make(chan struct{})
	var wg sync.WaitGroup

	consume := func(front bool) {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			var tk Task
			var ok bool
			if front {
				tk, ok = d.popFront()
			} else {
				tk, ok = d.popBack()
			}
			if !ok {
				runtime.Gosched()
				continue
			}
			sum.Add(uint64(runID(tk)))
			if popped.Add(1) == total {
				close(done)
			}
		}
	}
	wg.Add(3)
	go consume(false) // the owner
	go consume(true)  // two thieves
	go consume(true)

	wg.Add(1)
	go func() { // the submitter, alternating single pushes and batches
		defer wg.Done()
		i := uint32(0)
		for i < total {
			if i%3 == 0 && total-i >= 4 {
				batch := []Task{idTask(i), idTask(i + 1), idTask(i + 2), idTask(i + 3)}
				for len(batch) > 0 {
					n := d.pushN(batch)
					batch = batch[n:]
					if n == 0 {
						runtime.Gosched()
					}
				}
				i += 4
			} else {
				for !d.push(idTask(i)) {
					runtime.Gosched()
				}
				i++
			}
		}
	}()
	wg.Wait()

	if got := popped.Load(); got != total {
		t.Fatalf("popped %d tasks, want %d", got, total)
	}
	if want := uint64(total) * (total - 1) / 2; sum.Load() != want {
		t.Fatalf("checksum %d, want %d: a task was lost or duplicated", sum.Load(), want)
	}
	if d.len() != 0 {
		t.Fatalf("deque not empty after drain: %d left", d.len())
	}
}
