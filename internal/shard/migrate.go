package shard

import (
	"fmt"
	"sort"
	"time"

	"regions/internal/apps/appkit"
	"regions/internal/core"
	"regions/internal/trace"
)

// This file is the engine's elastic-sharding layer: live migration of
// regions between shard runtimes and live resizing of the worker set,
// ROADMAP item 2 (shard rebalancing beyond work stealing).
//
// Work stealing moves *tasks*, but a task pinned to the shard that owns its
// regions cannot move — a tenant whose state lives on shard 0 hammers shard
// 0 no matter how idle its siblings are. Migration moves the *state*: the
// donor exports a quiesced region (core.ExportRegion serializes pages and
// remaps nothing), the receiver imports it into its own address space
// (core.ImportRegion rewrites intra-region pointers in O(pages)), and from
// then on the tenant's pinned tasks land on the receiver. Both steps run as
// pinned tasks on the owning workers, so each runtime is only ever touched
// by its own goroutine — the shared-nothing discipline survives.
//
// Checksum discipline: migration tasks return checksum 0, and region
// content is placement-independent by construction (core.ContentChecksum),
// so an engine's summed checksum is bit-identical with migration forced on
// or off — the determinism gate extends across migration.
//
// The coordinator watches each worker's published busy-cycle and steal
// counters (pubBusy/pubSteals, maintained wait-free by the workers) and
// migrates a region from the busiest to the idlest shard after sustained
// skew. Resize(n) grows the worker set with fresh shards or retires the
// highest-indexed ones, migrating every resident region off before the
// shard's books close.

// migrationCycleBounds buckets the simulated cost of one migration
// (export + import task cycles) for the regions_migration_cycles histogram.
var migrationCycleBounds = []uint64{
	1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20,
}

// Migration describes one region moved between shards.
type Migration struct {
	// From and To are the donor and receiver shard ids (Stats.Shard /
	// metric-label ids, which match slice positions until a shrink
	// retires workers).
	From, To int
	// Old is the donor-side handle, now migrated: any use faults with
	// core.FaultMigratedRegion. New is the live handle on the receiver.
	Old, New *core.Region
	// Rec is the transfer record; Rec.Translate maps pointers the driver
	// captured into the old placement onto the new one.
	Rec *core.RegionRecord
	// Pages is the page count moved.
	Pages int
	// Cycles is the simulated cost of the move: the export and import
	// tasks' cycle windows summed.
	Cycles uint64
}

// Migrations returns the engine's totals: completed migrations and pages
// moved (coordinator-, MigrateRegion-, and Resize-initiated alike).
func (e *Engine) Migrations() (count, pages uint64) {
	return e.migrations.Load(), e.migratedPages.Load()
}

// exportOn runs pick as a pinned task on w and returns the records it
// exported. pick runs on the worker goroutine with exclusive access to the
// runtime; it must leave the runtime verified.
func (e *Engine) exportOn(w *worker, pick func(rt *core.Runtime) ([]Migration, error)) ([]Migration, error) {
	var out []Migration
	var pickErr error
	done := make(chan error, 1)
	e.submitTo(w, Task{
		Name: "migrate-export",
		Pin:  true,
		Run: func(appkit.RegionEnv) uint32 {
			out, pickErr = pick(w.env.Runtime())
			if pickErr == nil && len(out) > 0 {
				if err := w.env.Runtime().Verify(); err != nil {
					panic(err)
				}
			}
			return 0
		},
		Done: func(res TaskResult) {
			for i := range out {
				out[i].Cycles += res.EndCycles - res.StartCycles
			}
			if len(out) > 0 {
				e.emitSpan(trace.SpanMigrate, res.Shard, res.StartCycles, res.EndCycles)
			}
			done <- res.Err
		},
	})
	if err := <-done; err != nil {
		return nil, err
	}
	return out, pickErr
}

// importOn imports rec as a pinned task on w, returning the new handle and
// the task's simulated cycles.
func (e *Engine) importOn(w *worker, rec *core.RegionRecord) (*core.Region, uint64, error) {
	var newR *core.Region
	done := make(chan error, 1)
	var cycles uint64
	e.submitTo(w, Task{
		Name: "migrate-import",
		Pin:  true,
		Run: func(appkit.RegionEnv) uint32 {
			r, err := w.env.Runtime().ImportRegion(rec)
			if err != nil {
				panic(err)
			}
			if err := w.env.Runtime().Verify(); err != nil {
				panic(err)
			}
			newR = r
			return 0
		},
		Done: func(res TaskResult) {
			cycles = res.EndCycles - res.StartCycles
			e.emitSpan(trace.SpanMigrate, res.Shard, res.StartCycles, res.EndCycles)
			done <- res.Err
		},
	})
	if err := <-done; err != nil {
		return nil, cycles, err
	}
	return newR, cycles, nil
}

// recordMigration books one completed move into the engine counters,
// metrics, and the configured OnMigrate callback.
func (e *Engine) recordMigration(m Migration) {
	e.migrations.Add(1)
	e.migratedPages.Add(uint64(m.Pages))
	if e.migTotal != nil {
		e.migTotal.Inc()
		e.migPages.Add(uint64(m.Pages))
		e.migCycles.Observe(m.Cycles)
	}
	if fn := e.set.migration.OnMigrate; fn != nil {
		fn(m)
	}
}

// MigrateRegion moves r from shard from to shard to (positions in the live
// worker set) and returns the completed Migration. The export and import
// run as pinned tasks on the owning workers; between them the region exists
// only as a serialized record, and afterwards r faults with
// core.FaultMigratedRegion while Migration.New is the live handle.
//
// The region must be quiescent: unreferenced from other regions, frames,
// and globals, with no outbound cross-region pointers (else
// core.ErrExportReferenced / core.ErrExportCrossRegion). If the receiver
// cannot place the pages (OOM), the region is re-imported into the donor
// and the error returned — the region survives either way.
//
// MigrateRegion blocks on worker queues and must not be called from a task
// or Done callback (a worker waiting on its own queue deadlocks).
func (e *Engine) MigrateRegion(r *core.Region, from, to int) (Migration, error) {
	if r == nil {
		return Migration{}, fmt.Errorf("shard: MigrateRegion: nil region")
	}
	e.resizeMu.Lock()
	defer e.resizeMu.Unlock()
	ws := e.workers()
	if from < 0 || from >= len(ws) || to < 0 || to >= len(ws) {
		return Migration{}, fmt.Errorf("shard: MigrateRegion(%d, %d): engine has %d shards", from, to, len(ws))
	}
	if from == to {
		return Migration{}, fmt.Errorf("shard: MigrateRegion: donor and receiver are both shard %d", from)
	}
	return e.migrateOne(ws[from], ws[to], r)
}

// migrateOne moves one region (nil means "donor's best exportable choice")
// from donor to recv. Caller holds resizeMu.
func (e *Engine) migrateOne(donor, recv *worker, r *core.Region) (Migration, error) {
	migs, err := e.exportOn(donor, func(rt *core.Runtime) ([]Migration, error) {
		pick := r
		if pick == nil {
			pick = largestExportable(rt)
			if pick == nil {
				return nil, nil
			}
		}
		rec, err := rt.ExportRegion(pick)
		if err != nil {
			return nil, err
		}
		return []Migration{{From: donor.id, To: recv.id, Old: pick, Rec: rec, Pages: rec.Pages}}, nil
	})
	if err != nil {
		return Migration{}, fmt.Errorf("shard: export from shard %d: %w", donor.id, err)
	}
	if len(migs) == 0 {
		return Migration{}, errNoExportable
	}
	m := migs[0]
	newR, cycles, err := e.importOn(recv, m.Rec)
	if err != nil {
		// Receiver could not take the region; put it back where it was.
		if _, backCycles, backErr := e.importOn(donor, m.Rec); backErr != nil {
			return Migration{}, fmt.Errorf("shard: import into shard %d failed (%v) and rollback into shard %d failed: %w",
				recv.id, err, donor.id, backErr)
		} else {
			_ = backCycles
		}
		return Migration{}, fmt.Errorf("shard: import into shard %d (rolled back): %w", recv.id, err)
	}
	m.New = newR
	m.Cycles += cycles
	e.recordMigration(m)
	return m, nil
}

// errNoExportable reports a rebalance attempt that found no quiescent
// region to move; the coordinator treats it as "nothing to do".
var errNoExportable = fmt.Errorf("shard: donor has no exportable region")

// largestExportable returns the live region with the most allocated bytes
// that passes a quiescence probe, or nil. Probing costs one scan per
// candidate, so candidates are ordered largest-first and the first success
// wins — moving the biggest movable region shifts the most load per
// migration.
func largestExportable(rt *core.Runtime) *core.Region {
	live := rt.LiveRegions()
	sort.SliceStable(live, func(i, j int) bool {
		return live[i].Bytes() > live[j].Bytes()
	})
	for _, r := range live {
		if rt.Exportable(r) {
			return r
		}
	}
	return nil
}

// Resize grows or shrinks the live worker set to n shards and returns the
// migrations a shrink performed. Growing appends fresh shards (new ids, new
// empty runtimes) that immediately join placement and stealing. Shrinking
// retires the highest-indexed shards: each drains its own queues, exits,
// and has every resident region exported and imported round-robin into the
// survivors; a retired shard's stats join the Close aggregate.
//
// Resize must not race Submit/SubmitBatch — the driver quiesces submission
// first (internal/serve resizes at a phase barrier). Every region on a
// retiring shard must be quiescent (exportable); a region that is not
// fails the resize with the worker already retired.
func (e *Engine) Resize(n int) ([]Migration, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: Resize(%d): need at least one shard", n)
	}
	e.resizeMu.Lock()
	defer e.resizeMu.Unlock()
	if e.closed.Load() {
		return nil, fmt.Errorf("shard: Resize after Close")
	}
	ws := e.workers()
	switch {
	case n == len(ws):
		return nil, nil
	case n > len(ws):
		grown := append([]*worker(nil), ws...)
		added := make([]*worker, 0, n-len(ws))
		for len(grown) < n {
			w := e.newWorker()
			grown = append(grown, w)
			added = append(added, w)
		}
		e.ws.Store(&grown)
		for _, w := range added {
			e.wg.Add(1)
			go w.loop(e)
		}
		return nil, nil
	}
	// Shrink: publish the survivors first so new placement and steal sweeps
	// stop seeing the victims, then let the victims drain and exit.
	survivors := append([]*worker(nil), ws[:n]...)
	victims := ws[n:]
	e.ws.Store(&survivors)
	for _, v := range victims {
		v.retiring.Store(true)
	}
	e.wake()
	for _, v := range victims {
		<-v.done
	}
	var migs []Migration
	var firstErr error
	for _, v := range victims {
		// The victim goroutine has exited; its runtime is safe to drive from
		// here. Export every live region and import each into a survivor,
		// spreading round-robin by global migration order.
		rt := v.env.Runtime()
		for _, r := range rt.LiveRegions() {
			rec, err := rt.ExportRegion(r)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("shard: resize: evacuating shard %d: %w", v.id, err)
				}
				continue
			}
			dst := survivors[len(migs)%len(survivors)]
			newR, cycles, err := e.importOn(dst, rec)
			if err != nil {
				// Survivor refused (OOM): the region's pages are gone from the
				// victim too, so restore it there directly — the victim's
				// goroutine is gone and its runtime is ours to drive.
				if back, backErr := rt.ImportRegion(rec); backErr != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("shard: resize: import into shard %d failed (%v) and restore into shard %d failed: %w",
							dst.id, err, v.id, backErr)
					}
				} else {
					_ = back
					if firstErr == nil {
						firstErr = fmt.Errorf("shard: resize: import into shard %d (region restored on retired shard %d): %w",
							dst.id, v.id, err)
					}
				}
				continue
			}
			m := Migration{From: v.id, To: dst.id, Old: r, New: newR, Rec: rec,
				Pages: rec.Pages, Cycles: cycles}
			e.recordMigration(m)
			migs = append(migs, m)
		}
		if err := rt.Verify(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard: resize: verify retired shard %d: %w", v.id, err)
		}
		// The evacuation charged cycles after the worker snapshotted its
		// stats at exit; refresh so the Close aggregate stays truthful.
		v.stats.SimCycles = v.env.Counters().TotalCycles()
		v.stats.OSBytes = v.env.Space().MappedBytes()
	}
	e.retired = append(e.retired, victims...)
	return migs, firstErr
}

// coordinate is the migration coordinator goroutine: every cfg.Interval it
// reads each live worker's published busy-cycle and steal deltas, and after
// cfg.SustainedPolls consecutive skewed polls migrates up to cfg.MaxMoves
// regions from the busiest to the idlest shard. Skew means the busiest
// shard's delta exceeds SkewRatio times the idlest's (a fully idle shard
// always qualifies); when stealing is on, a window with steals corroborates
// that the scheduler is already shuttling tasks — but an idle window with
// zero steals and zero idle-side work also counts, since pinned tasks never
// steal.
func (e *Engine) coordinate(cfg MigrationConfig) {
	defer close(e.coordDone)
	tick := time.NewTicker(cfg.Interval)
	defer tick.Stop()
	type snap struct{ busy, steals uint64 }
	last := make(map[int]snap)
	streak := 0
	for {
		select {
		case <-e.coordStop:
			return
		case <-tick.C:
		}
		ws := e.workers()
		if len(ws) < 2 {
			streak = 0
			continue
		}
		var donor, recv *worker
		var maxD, minD uint64
		cur := make(map[int]snap, len(ws))
		for _, w := range ws {
			s := snap{busy: w.pubBusy.Load(), steals: w.pubSteals.Load()}
			cur[w.id] = s
			d := s.busy - last[w.id].busy
			if donor == nil || d > maxD {
				donor, maxD = w, d
			}
			if recv == nil || d < minD {
				recv, minD = w, d
			}
		}
		last = cur
		skewed := donor != recv && maxD > 0 &&
			(minD == 0 || float64(maxD) >= cfg.SkewRatio*float64(minD))
		if !skewed {
			streak = 0
			continue
		}
		streak++
		if streak < cfg.SustainedPolls {
			continue
		}
		streak = 0
		e.rebalance(donor, recv, cfg.MaxMoves)
	}
}

// rebalance moves up to maxMoves of donor's exportable regions to recv,
// re-validating both against the live worker set under resizeMu (a Resize
// may have retired either since the coordinator sampled them). Errors are
// swallowed: a failed or impossible rebalance leaves both shards intact and
// the next poll tries again.
func (e *Engine) rebalance(donor, recv *worker, maxMoves int) {
	e.resizeMu.Lock()
	defer e.resizeMu.Unlock()
	if e.closed.Load() {
		return
	}
	ws := e.workers()
	liveDonor, liveRecv := false, false
	for _, w := range ws {
		liveDonor = liveDonor || w == donor
		liveRecv = liveRecv || w == recv
	}
	if !liveDonor || !liveRecv {
		return
	}
	for i := 0; i < maxMoves; i++ {
		if _, err := e.migrateOne(donor, recv, nil); err != nil {
			return
		}
	}
}
