package shard

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestDeprecatedNewMatchesOptions pins the adapter contract: New(Config)
// must configure exactly what the equivalent With* options do, so existing
// callers can migrate field by field. Both engines run the same task set
// and must agree on shard count, drained totals, and summed checksum.
func TestDeprecatedNewMatchesOptions(t *testing.T) {
	tasks := randomTasks(rand.New(rand.NewSource(7)), 120)

	run := func(e *Engine) Aggregate {
		e.SubmitBatch(tasks)
		return e.Close()
	}
	old := run(New(Config{Shards: 3, NoSteal: true, Queue: 8, PageBatch: 16}))
	opt := run(NewEngine(WithShards(3), WithNoSteal(), WithQueueCap(8), WithPageBatch(16)))

	if old.Shards != opt.Shards {
		t.Fatalf("shards: adapter %d, options %d", old.Shards, opt.Shards)
	}
	if old.Tasks != opt.Tasks || old.Failures != opt.Failures {
		t.Fatalf("totals: adapter (%d, %d), options (%d, %d)",
			old.Tasks, old.Failures, opt.Tasks, opt.Failures)
	}
	if old.Checksum != opt.Checksum {
		t.Fatalf("checksum: adapter %#x, options %#x", old.Checksum, opt.Checksum)
	}
	if old.Steals != 0 || opt.Steals != 0 {
		t.Fatalf("NoSteal ignored: steals %d / %d", old.Steals, opt.Steals)
	}
}

// TestDefaultsApply checks the resolved defaults: zero options mean one
// shard, and sub-minimum shard counts clamp to one.
func TestDefaultsApply(t *testing.T) {
	e := NewEngine()
	if e.Shards() != 1 {
		t.Fatalf("default Shards() = %d, want 1", e.Shards())
	}
	e.Close()

	e = NewEngine(WithShards(-3))
	if e.Shards() != 1 {
		t.Fatalf("Shards() = %d with WithShards(-3), want 1", e.Shards())
	}
	e.Close()
}

// TestWithPlacement replaces the hash placement with a fixed-target
// function and verifies both ShardFor and actual pinned execution follow
// it, while stealing is disabled so nothing can drift.
func TestWithPlacement(t *testing.T) {
	const target = 2
	e := NewEngine(WithShards(4), WithNoSteal(),
		WithPlacement(func(key string, shards int) int { return target % shards }))
	for _, key := range []string{"a", "b", "anything"} {
		if got := e.ShardFor(key); got != target {
			t.Fatalf("ShardFor(%q) = %d, want %d", key, got, target)
		}
	}
	const n = 12
	for i := 0; i < n; i++ {
		tk := workTask(uint32(i), 4)
		tk.Affinity = fmt.Sprintf("key-%d", i)
		tk.Pin = true
		e.Submit(tk)
	}
	agg := e.Close()
	if agg.Failures != 0 {
		t.Fatalf("%d failures", agg.Failures)
	}
	for _, s := range agg.PerShard {
		want := uint64(0)
		if s.Shard == target {
			want = n
		}
		if s.Tasks != want {
			t.Fatalf("shard %d ran %d tasks, want %d under fixed placement", s.Shard, s.Tasks, want)
		}
	}
}
