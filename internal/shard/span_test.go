package shard

import (
	"math/rand"
	"testing"

	"regions/internal/core"
	"regions/internal/metrics"
	"regions/internal/trace"
)

// countSpans tallies matched span pairs per kind in a stream.
func countSpans(t *testing.T, events []trace.Event) map[trace.SpanKind]int {
	t.Helper()
	p, err := trace.BuildSpanProfile(events, 0)
	if err != nil {
		t.Fatalf("span profile: %v", err)
	}
	out := map[trace.SpanKind]int{}
	for _, s := range p.Track {
		out[s.Kind]++
	}
	for _, r := range p.Requests {
		for _, s := range r.Spans {
			out[s.Kind]++
		}
	}
	return out
}

// TestEngineSpansParity runs the same randomized mix with and without a
// span tracer. Under WithNoSteal placement is deterministic, so checksums
// AND per-shard cycle totals must be bit-identical (spans are host-side
// metadata); the close-time sweep drains must appear as sweep spans.
func TestEngineSpansParity(t *testing.T) {
	tasks := randomTasks(rand.New(rand.NewSource(7)), 300)
	run := func(spans bool) (Aggregate, []trace.Event) {
		opts := []Option{WithShards(4), WithNoSteal(), WithDeferredDelete(4, 8)}
		var tr *trace.Tracer
		if spans {
			tr = trace.New(1 << 16)
			opts = append(opts, WithSpanTracer(tr))
		}
		eng := NewEngine(opts...)
		eng.SubmitBatch(tasks)
		agg := eng.Close()
		var evs []trace.Event
		if tr != nil {
			evs = tr.Events()
		}
		return agg, evs
	}
	on, evs := run(true)
	off, _ := run(false)
	if on.Checksum != off.Checksum {
		t.Fatalf("span tracer changed the checksum: %08x vs %08x", on.Checksum, off.Checksum)
	}
	if on.TotalCycles != off.TotalCycles || on.MakespanCycles != off.MakespanCycles {
		t.Fatalf("span tracer changed cycle totals: %d/%d vs %d/%d",
			on.TotalCycles, on.MakespanCycles, off.TotalCycles, off.MakespanCycles)
	}
	if counts := countSpans(t, evs); counts[trace.SpanSweep] == 0 {
		t.Error("deferred run with close-time drains emitted no sweep spans")
	}
}

// TestEngineStealSpans checks a stealing run emits one steal-stall span per
// recorded steal, and that the checksum (the placement-independent gate)
// matches a traced no-steal run of the same mix.
func TestEngineStealSpans(t *testing.T) {
	tasks := randomTasks(rand.New(rand.NewSource(11)), 300)
	tr := trace.New(1 << 16)
	eng := NewEngine(WithShards(4), WithSpanTracer(tr), WithDeferredDelete(4, 8), WithIdleSweep(true))
	eng.SubmitBatch(tasks)
	agg := eng.Close()

	ref := NewEngine(WithShards(4), WithNoSteal())
	ref.SubmitBatch(tasks)
	if want := ref.Close().Checksum; agg.Checksum != want {
		t.Fatalf("traced stealing checksum %08x, no-steal reference %08x", agg.Checksum, want)
	}
	counts := countSpans(t, tr.Events())
	if uint64(counts[trace.SpanStealStall]) != agg.Steals {
		t.Fatalf("%d steal-stall spans for %d steals", counts[trace.SpanStealStall], agg.Steals)
	}
}

// TestEngineMigrateSpans checks a forced migration brackets its export and
// import pauses in migrate spans on the two shards involved.
func TestEngineMigrateSpans(t *testing.T) {
	tr := trace.New(1 << 12)
	eng := NewEngine(WithShards(2), WithNoSteal(), WithSpanTracer(tr))
	registerSizeCleanups(t, eng, 8)
	var r *core.Region
	if err := pinnedDo(eng, 0, func(rt *core.Runtime) {
		r, _ = buildChain(rt, 40)
	}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := eng.MigrateRegion(r, 0, 1); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	eng.Close()
	p, err := trace.BuildSpanProfile(tr.Events(), 0)
	if err != nil {
		t.Fatal(err)
	}
	byShard := map[int]int{}
	for _, s := range p.Track {
		if s.Kind == trace.SpanMigrate {
			byShard[s.Shard]++
		}
	}
	if byShard[0] == 0 || byShard[1] == 0 {
		t.Fatalf("migrate spans per shard = %v, want both sides bracketed", byShard)
	}
}

// TestEngineDroppedMetric checks Close publishes regions_trace_dropped_total
// when the span ring wrapped, and leaves the series absent when it did not.
func TestEngineDroppedMetric(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := trace.New(8) // tiny ring: guaranteed wraparound
	eng := NewEngine(WithShards(2), WithDeferredDelete(2, 4), WithIdleSweep(true),
		WithMetrics(reg), WithSpanTracer(tr))
	eng.SubmitBatch(randomTasks(rand.New(rand.NewSource(3)), 200))
	eng.Close()
	if tr.Stats().Dropped == 0 {
		t.Skip("ring did not wrap; nothing to verify")
	}
	v, ok := reg.Snapshot().Counter("regions_trace_dropped_total")
	if !ok || v != tr.Stats().Dropped {
		t.Fatalf("regions_trace_dropped_total = %d (present %v), want %d",
			v, ok, tr.Stats().Dropped)
	}
}
