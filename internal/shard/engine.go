package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"regions/internal/apps/appkit"
	"regions/internal/core"
	"regions/internal/metrics"
	"regions/internal/trace"
)

// DefaultPageBatch is the free-page cache batch used by shard runtimes when
// the config does not name one: each shard requests pages from its simulated
// OS 64 at a time and serves region churn from the cache.
const DefaultPageBatch = 64

// Task is one unit of work for the engine. Run receives the executing
// shard's environment and returns a checksum; checksums are summed (a
// commutative fold) into the shard's stats, so any placement of a fixed
// task set — including placements rearranged by work stealing — yields the
// same aggregate checksum, the engine's determinism gate. Summing rather
// than XOR keeps repeated identical tasks from cancelling out.
type Task struct {
	// Name labels the task in failure reports.
	Name string
	// Affinity, when non-empty, names the task's home shard: all tasks
	// with this key hash to the same shard. It is a soft preference —
	// an idle shard may still steal the task — unless Pin is also set.
	// Empty-key tasks are placed round-robin.
	Affinity string
	// Pin makes the task unstealable: it executes on its home shard, and
	// pinned tasks on one shard run in submission order (FIFO). Tasks
	// that touch regions owned by a specific shard's runtime must pin;
	// everything else should leave Pin false so the scheduler can balance
	// load.
	Pin bool
	// Run executes the task on the shard's environment.
	Run func(env appkit.RegionEnv) uint32
	// Done, when non-nil, is the task's completion callback: it runs on the
	// executing shard's goroutine immediately after Run returns (or after a
	// panic in Run is recovered), before the worker pops its next task.
	// Pinned tasks on one shard therefore observe their Done calls in
	// submission (FIFO) order, which is what lets a serving driver thread
	// per-shard bookkeeping through callbacks without locks — see
	// internal/serve. Done must not submit to the engine.
	Done func(res TaskResult)
}

// TaskResult describes one completed task, delivered to Task.Done.
type TaskResult struct {
	// Shard is the shard the task executed on (its home shard unless the
	// task was stolen).
	Shard int
	// Stolen reports whether a sibling shard ran the task.
	Stolen bool
	// Checksum is Run's return value; zero when the task failed.
	Checksum uint32
	// Err is non-nil when Run panicked; the panic was recovered and
	// recorded as a task failure.
	Err error
	// StartCycles and EndCycles bracket the task on the executing shard's
	// simulated clock: EndCycles-StartCycles is the simulated cost of this
	// task, and since a shard runs its tasks serially, consecutive pinned
	// tasks see contiguous, monotone windows.
	StartCycles, EndCycles uint64
}

// Config sizes an Engine for the deprecated New constructor. New code
// should use NewEngine with functional options (see options.go); each
// field here corresponds to one With* option.
type Config struct {
	// Shards is the number of independent runtimes; values below 1 become 1.
	Shards int
	// PageBatch overrides DefaultPageBatch for each shard's free-page
	// cache; 1 disables batching, 0 means the default.
	PageBatch int
	// Queue is the per-shard pending-task deque capacity (default 32).
	Queue int
	// NoSteal disables work stealing: every task runs on its home shard,
	// the engine's pre-stealing static placement. Exists for A/B
	// measurement (the imbalance benchmark) and as an escape hatch.
	NoSteal bool
	// Unsafe runs every shard on the unsafe region library (no reference
	// counting), for measuring the cost of safety under load.
	Unsafe bool
	// Metrics, when non-nil, attaches every shard's runtime and space to
	// the registry (core/mem series are shared across shards; the registry
	// is atomic) and adds per-shard labeled series: tasks, failures, busy
	// simulated cycles, steals, and live queue depth. Close records the
	// engine's makespan and utilization gauges.
	Metrics *metrics.Registry
	// HeapProfileEvery, when above 0, makes each shard capture a heap
	// profile of its runtime every N completed tasks (plus after its
	// first task and once at drain, so short runs still expose one),
	// exposed via HeapReports — the data behind regionbench's /heap
	// endpoint. Capture runs on the shard's own goroutine, so it is safe
	// without locking the runtime.
	HeapProfileEvery int
	// DeferredDelete runs every shard runtime with core.Options.
	// DeferredDelete: region deletion detaches pages and the per-page
	// reclamation runs in bounded sweep slices — on idle cycles when
	// IdleSweep is set, via the allocation tax above the high-water mark,
	// and in a final drain when the engine closes (recorded per shard as
	// Stats.DrainSweepCycles).
	DeferredDelete bool
	// SweepBudget and SweepHighWater forward to the shard runtimes'
	// core.Options fields; zero keeps the core defaults.
	SweepBudget    int
	SweepHighWater int
	// NoStrPool runs every shard runtime with the pooled string allocator's
	// free lists disabled (core.Options.NoStrPool) — the A/B escape hatch
	// for measuring explicit string reuse.
	NoStrPool bool
	// IdleSweep makes a worker that finds no runnable task sweep one slice
	// of its runtime's debt before blocking, turning scheduler idle cycles
	// into reclamation. Off by default because sweep progress then depends
	// on wall-clock scheduling: drivers that need deterministic simulated
	// clocks (internal/serve) model their own idle sweeping instead.
	IdleSweep bool
}

// Stats is one shard's tally, owned by the shard goroutine until it exits
// (Close, or retirement by a shrinking Resize).
type Stats struct {
	Shard     int
	Tasks     uint64
	Failures  uint64
	LastError string        // first line of the most recent task failure
	Checksum  uint32        // sum of completed task checksums
	Steals    uint64        // tasks this shard stole from siblings' deques
	SimCycles uint64        // simulated cycles charged on this shard
	OSBytes   uint64        // memory the shard requested from its OS
	Busy      time.Duration // wall-clock time spent inside tasks

	// Deferred-reclamation tallies (Config.DeferredDelete only).
	SweptPages       uint64 // pages the shard's sweeper poisoned
	SweepDebtPeak    int    // highest sweep debt the shard ever carried
	DrainSweepCycles uint64 // simulated cycles of the close-time debt drain
}

// Aggregate is the whole engine's tally after Close. When the engine was
// resized, PerShard includes retired shards (sorted by shard id) and Shards
// counts only the workers live at Close.
type Aggregate struct {
	Shards   int
	Tasks    uint64
	Failures uint64
	Checksum uint32 // summed across shards; placement-independent
	Steals   uint64 // tasks that ran away from their home shard
	// MakespanCycles is the modelled completion time of the workload: the
	// maximum simulated cycle count over shards, since shards run
	// concurrently in wall time but each is its own simulated machine.
	MakespanCycles uint64
	// TotalCycles sums simulated cycles over all shards (the work done).
	TotalCycles uint64
	PerShard    []Stats
}

// workerMetrics caches one shard's labeled series.
type workerMetrics struct {
	tasks      *metrics.Counter
	failures   *metrics.Counter
	busyCycles *metrics.Counter
	steals     *metrics.Counter
	queueDepth *metrics.Gauge
}

func newWorkerMetrics(reg *metrics.Registry, shard int) *workerMetrics {
	label := fmt.Sprintf(`{shard="%d"}`, shard)
	return &workerMetrics{
		tasks:      reg.Counter("regions_shard_tasks_total" + label),
		failures:   reg.Counter("regions_shard_failures_total" + label),
		busyCycles: reg.Counter("regions_shard_busy_cycles_total" + label),
		steals:     reg.Counter("regions_shard_steals_total" + label),
		queueDepth: reg.Gauge("regions_shard_queue_depth" + label),
	}
}

type worker struct {
	id      int // stable shard id; also the metric label and Env name
	env     *Env
	dq      deque // stealable tasks: owner pops back, thieves take front
	pinned  deque // pinned tasks: FIFO, never stolen
	npinned atomic.Int64
	stats   Stats

	// retiring tells the worker to exit once its own queues are drained;
	// done closes when its goroutine has exited. Set only by Resize.
	retiring atomic.Bool
	done     chan struct{}

	// pubBusy and pubSteals publish the shard's simulated busy cycles and
	// steal count after every task, regardless of metrics attachment, so
	// the migration coordinator can watch load without a registry.
	pubBusy   atomic.Uint64
	pubSteals atomic.Uint64

	met       *workerMetrics
	profEvery int
	lastProf  atomic.Value // *metrics.HeapReport
}

// Engine distributes tasks over N shard workers with work stealing: Submit
// places a task on its home shard's deque (affinity hash, or round-robin),
// the owner pops its own deque newest-first, and a worker that runs dry
// takes the oldest task from the first non-empty sibling deque. Pinned
// tasks never move. Submit and SubmitBatch may be called from any
// goroutine; Close waits for the queues to drain and returns the tally.
//
// The worker set is dynamic: Resize grows it by starting fresh shards or
// shrinks it by retiring the highest-indexed ones and migrating their
// resident regions (see migrate.go). The live slice is published through an
// atomic pointer, so Submit and the steal sweep always act on a consistent
// snapshot; Resize must not race Submit/SubmitBatch/Close — the driver
// quiesces submissions first (see Resize).
//
// Sleep/wake protocol: e.stealable counts tasks sitting in stealable
// deques engine-wide and each worker counts its own pinned backlog, both
// maintained by submitters at push time and by workers at pop time. A
// worker that finds nothing re-checks those counters under the engine
// mutex before blocking on the condvar, so a push between "sweep found
// nothing" and "sleep" can never be lost; every push and pop broadcasts,
// which also unblocks submitters waiting on a full deque.
type Engine struct {
	ws        atomic.Pointer[[]*worker]
	rr        atomic.Uint32
	wg        sync.WaitGroup
	reg       *metrics.Registry
	set       settings // resolved options; template for workers Resize adds
	noSteal   bool
	deferred  bool          // shards run with core.Options.DeferredDelete
	idleSweep bool          // idle workers sweep debt before sleeping
	spanT     *trace.Tracer // span sink (WithSpanTracer), nil for none
	stealable atomic.Int64 // tasks currently in stealable deques, engine-wide

	mu     sync.Mutex
	cond   *sync.Cond
	closed atomic.Bool

	// Resize/Close serialization and retired-worker bookkeeping.
	resizeMu sync.Mutex
	nextID   int
	retired  []*worker

	// Migration tallies and coordinator plumbing (see migrate.go).
	migrations    atomic.Uint64
	migratedPages atomic.Uint64
	coordStop     chan struct{}
	coordDone     chan struct{}
	migTotal      *metrics.Counter
	migPages      *metrics.Counter
	migCycles     *metrics.Histogram
}

// NewEngine starts an engine configured by functional options (see
// options.go), each worker owning an independent safe (or unsafe) region
// runtime with a batched free-page cache.
func NewEngine(opts ...Option) *Engine {
	var s settings
	for _, o := range opts {
		o(&s)
	}
	if s.Shards < 1 {
		s.Shards = 1
	}
	if s.Queue <= 0 {
		s.Queue = 32
	}
	if s.PageBatch == 0 {
		s.PageBatch = DefaultPageBatch
	}
	if s.placement == nil {
		s.placement = defaultPlacement
	}
	e := &Engine{reg: s.Metrics, set: s, noSteal: s.NoSteal, spanT: s.spanT,
		deferred: s.DeferredDelete, idleSweep: s.DeferredDelete && s.IdleSweep}
	e.cond = sync.NewCond(&e.mu)
	if e.reg != nil {
		e.migTotal = e.reg.Counter("regions_migrations_total")
		e.migPages = e.reg.Counter("regions_migrated_pages_total")
		e.migCycles = e.reg.Histogram("regions_migration_cycles", migrationCycleBounds)
	}
	ws := make([]*worker, s.Shards)
	for i := range ws {
		ws[i] = e.newWorker()
	}
	// Publish the full slice before starting anyone: a worker's steal sweep
	// reads the whole worker set.
	e.ws.Store(&ws)
	for _, w := range ws {
		e.wg.Add(1)
		go w.loop(e)
	}
	if s.migration.Enabled {
		e.coordStop = make(chan struct{})
		e.coordDone = make(chan struct{})
		go e.coordinate(s.migration)
	}
	return e
}

// New starts an engine sized by a Config literal.
//
// Deprecated: use NewEngine with functional options. New remains as a thin
// adapter and configures exactly what the equivalent With* options would.
func New(cfg Config) *Engine { return NewEngine(withConfig(cfg)) }

// newWorker builds (but does not start) a worker from the engine's resolved
// settings, assigning the next stable shard id.
func (e *Engine) newWorker() *worker {
	id := e.nextID
	e.nextID++
	w := &worker{
		id: id,
		env: NewEnv(shardName(id), core.Options{
			Safe:           !e.set.Unsafe,
			PageBatch:      e.set.PageBatch,
			DeferredDelete: e.set.DeferredDelete,
			SweepBudget:    e.set.SweepBudget,
			SweepHighWater: e.set.SweepHighWater,
			NoStrPool:      e.set.NoStrPool,
		}),
		dq:        newDeque(e.set.Queue),
		pinned:    newDeque(e.set.Queue),
		done:      make(chan struct{}),
		profEvery: e.set.HeapProfileEvery,
	}
	if e.reg != nil {
		w.env.Runtime().SetMetrics(e.reg)
		w.env.Space().SetMetrics(e.reg)
		w.met = newWorkerMetrics(e.reg, id)
	}
	w.stats.Shard = id
	return w
}

// workers returns the current live worker slice. The slice is immutable
// once published; Resize publishes a new one.
func (e *Engine) workers() []*worker { return *e.ws.Load() }

// Shards returns the number of live workers.
func (e *Engine) Shards() int { return len(e.workers()) }

// Env returns shard i's environment (by position in the live worker set).
// The worker goroutine owns its environment while tasks run, so callers may
// touch it only before the first Submit (to install fault plans, page
// limits, cleanups), from a task pinned to shard i, or after Close (to
// Verify the drained heap).
func (e *Engine) Env(i int) *Env { return e.workers()[i].env }

// ShardFor returns the home shard index an affinity key maps to under the
// engine's placement function (WithPlacement; FNV-1a mod shards by
// default).
func (e *Engine) ShardFor(key string) int {
	return e.set.placement(key, len(e.workers()))
}

// homeWorker picks t's home worker from ws: the placement function when an
// affinity key is set, round-robin otherwise.
func (e *Engine) homeWorker(ws []*worker, t Task) *worker {
	if t.Affinity != "" {
		return ws[e.set.placement(t.Affinity, len(ws))]
	}
	return ws[int((e.rr.Add(1)-1)%uint32(len(ws)))]
}

// Submit places t on its home shard's deque (the pinned queue when t.Pin
// is set) and blocks only while that queue is full. Submitting after Close
// panics, like writing to a closed pipe.
func (e *Engine) Submit(t Task) {
	if e.closed.Load() {
		panic("shard: Submit after Close")
	}
	w := e.homeWorker(e.workers(), t)
	e.submitTo(w, t)
}

// submitTo places t on w's queue (pinned queue when t.Pin is set),
// blocking while the queue is full. The internal entry point for targeting
// a specific worker — migration uses it to pin export/import tasks to a
// donor or receiver regardless of placement.
func (e *Engine) submitTo(w *worker, t Task) {
	q := &w.dq
	if t.Pin {
		q = &w.pinned
	}
	if !q.push(t) {
		e.mu.Lock()
		for !q.push(t) {
			if e.closed.Load() {
				e.mu.Unlock()
				panic("shard: Submit after Close")
			}
			e.cond.Wait()
		}
		e.mu.Unlock()
	}
	e.noteQueued(w, t.Pin, 1)
}

// SubmitBatch submits tasks in order, grouped per destination queue so a
// large injection pays one deque lock round and one wakeup per shard
// instead of one per task. Order is preserved within each (shard, pinned)
// queue — the only order the engine promises, since stealable tasks may be
// rearranged by stealing anyway while pinned queues are FIFO.
func (e *Engine) SubmitBatch(ts []Task) {
	ws := e.workers()
	steal := make([][]Task, len(ws))
	pin := make([][]Task, len(ws))
	index := make(map[*worker]int, len(ws))
	for i, w := range ws {
		index[w] = i
	}
	for _, t := range ts {
		i := index[e.homeWorker(ws, t)]
		if t.Pin {
			pin[i] = append(pin[i], t)
		} else {
			steal[i] = append(steal[i], t)
		}
	}
	for i, w := range ws {
		e.enqueue(w, &w.dq, false, steal[i])
		e.enqueue(w, &w.pinned, true, pin[i])
	}
}

// enqueue pushes ts onto q in order, blocking while the queue is full.
func (e *Engine) enqueue(w *worker, q *deque, pinned bool, ts []Task) {
	for len(ts) > 0 {
		if e.closed.Load() {
			panic("shard: Submit after Close")
		}
		n := q.pushN(ts)
		if n == 0 {
			e.mu.Lock()
			for q.full() {
				if e.closed.Load() {
					e.mu.Unlock()
					panic("shard: Submit after Close")
				}
				e.cond.Wait()
			}
			e.mu.Unlock()
			continue
		}
		e.noteQueued(w, pinned, n)
		ts = ts[n:]
	}
}

// noteQueued publishes n newly queued tasks on w: counters first, then a
// broadcast so sleeping workers re-check and find them.
func (e *Engine) noteQueued(w *worker, pinned bool, n int) {
	if pinned {
		w.npinned.Add(int64(n))
	} else {
		e.stealable.Add(int64(n))
	}
	if w.met != nil {
		w.met.queueDepth.Add(int64(n))
	}
	e.wake()
}

// wake broadcasts the engine condvar under its mutex, so a waiter is either
// already re-checking the counters or blocked and about to be released —
// never in between.
func (e *Engine) wake() {
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
}

// next returns the next task for w and whether it was stolen. Pop order:
// w's pinned queue first (FIFO, nobody else can run those), then the newest
// task on w's own deque (LIFO keeps the shard working what it was just
// given), then — unless stealing is off — the oldest task of the first
// non-empty sibling deque, sweeping rightward from w's own position in the
// live worker set. A worker marked retiring exits (ok=false) as soon as
// its own queues are dry instead of stealing or sleeping. Blocks while
// nothing is runnable; ok=false otherwise means the engine is closed and
// drained.
func (e *Engine) next(w *worker) (t Task, stolen, ok bool) {
	for {
		if t, ok := w.pinned.popFront(); ok {
			w.npinned.Add(-1)
			w.notePopped(w)
			return t, false, true
		}
		if t, ok := w.dq.popBack(); ok {
			e.stealable.Add(-1)
			w.notePopped(w)
			return t, false, true
		}
		if w.retiring.Load() {
			return Task{}, false, false
		}
		if !e.noSteal {
			// The live slice can change across iterations of the outer loop
			// (Resize), so find our own position fresh each sweep; a worker
			// no longer in the slice (mid-retirement) simply doesn't steal.
			ws := e.workers()
			self := -1
			for i, v := range ws {
				if v == w {
					self = i
					break
				}
			}
			if self >= 0 {
				for i := 1; i < len(ws); i++ {
					v := ws[(self+i)%len(ws)]
					if t, ok := v.dq.popFront(); ok {
						e.stealable.Add(-1)
						w.notePopped(v)
						return t, true, true
					}
				}
			}
		}
		// Nothing runnable anywhere: spend the idle cycles on sweep debt,
		// one bounded slice per pass so a task arriving mid-drain is picked
		// up after at most one slice.
		if e.idleSweep {
			if rt := w.env.Runtime(); rt.SweepDebt() > 0 {
				before := w.env.Counters().TotalCycles()
				rt.SweepSlice()
				e.emitSpan(trace.SpanSweep, w.id, before, w.env.Counters().TotalCycles())
				continue
			}
		}
		e.mu.Lock()
		for {
			if w.npinned.Load() > 0 || w.dq.len() > 0 ||
				(!e.noSteal && e.stealable.Load() > 0) {
				break
			}
			if e.closed.Load() || w.retiring.Load() {
				e.mu.Unlock()
				return Task{}, false, false
			}
			e.cond.Wait()
		}
		e.mu.Unlock()
	}
}

// emitSpan brackets the shard-clock window [begin, end] on shard in a span
// pair on the engine's span tracer. Nil-checked (an engine without a span
// tracer pays one predicate) and host-side only: emission charges no
// simulated cycles, the stamps are cycle counts the shard already paid.
// Both halves are emitted together, after the fact, which the analyzer
// accepts because it orders by the stamps, not by arrival.
func (e *Engine) emitSpan(kind trace.SpanKind, shard int, begin, end uint64) {
	if e.spanT == nil {
		return
	}
	e.spanT.Emit(trace.SpanBegin(kind, -1, shard, begin))
	e.spanT.Emit(trace.SpanEnd(kind, -1, shard, end))
}

// notePopped records a task leaving owner's queue; the caller's loop then
// broadcasts so submitters blocked on the freed slot retry.
func (w *worker) notePopped(owner *worker) {
	if owner.met != nil {
		owner.met.queueDepth.Dec()
	}
}

// HeapReports returns the most recent heap profile captured by each live
// shard, in shard order, omitting shards that have not captured one yet.
// Profiles are taken by the shard goroutines (see Config.HeapProfileEvery);
// reading them is safe at any time.
func (e *Engine) HeapReports() []*metrics.HeapReport {
	var out []*metrics.HeapReport
	for _, w := range e.workers() {
		if rep, ok := w.lastProf.Load().(*metrics.HeapReport); ok && rep != nil {
			out = append(out, rep)
		}
	}
	return out
}

// captureHeapProfile snapshots the shard runtime's heap into lastProf; a
// heap that fails its structural checks simply yields no new profile.
func (w *worker) captureHeapProfile() {
	rep, err := w.env.Runtime().HeapReport()
	if err != nil || rep == nil {
		return
	}
	rep.Origin = w.env.Name()
	w.lastProf.Store(rep)
}

// Close drains every queue, stops the workers (and the migration
// coordinator, if one is running), and returns the aggregated stats —
// including shards retired by earlier Resize calls, sorted by shard id.
func (e *Engine) Close() Aggregate {
	if e.coordStop != nil {
		close(e.coordStop)
		<-e.coordDone
		e.coordStop = nil
	}
	e.resizeMu.Lock()
	defer e.resizeMu.Unlock()
	e.mu.Lock()
	e.closed.Store(true)
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
	live := e.workers()
	all := append(append([]*worker(nil), e.retired...), live...)
	sortWorkersByID(all)
	agg := Aggregate{Shards: len(live)}
	for _, w := range all {
		s := w.stats
		agg.Tasks += s.Tasks
		agg.Failures += s.Failures
		agg.Checksum += s.Checksum
		agg.Steals += s.Steals
		agg.TotalCycles += s.SimCycles
		if s.SimCycles > agg.MakespanCycles {
			agg.MakespanCycles = s.SimCycles
		}
		agg.PerShard = append(agg.PerShard, s)
	}
	if e.reg != nil {
		e.reg.Gauge("regions_shard_makespan_cycles").Set(int64(agg.MakespanCycles))
		if agg.MakespanCycles > 0 && agg.Shards > 0 {
			util := agg.TotalCycles * 100 / (agg.MakespanCycles * uint64(agg.Shards))
			e.reg.Gauge("regions_shard_utilization_pct").Set(int64(util))
		}
		if e.spanT != nil {
			// Span reconstruction is only as good as the ring: publish the
			// events lost to wraparound so a scrape (and the SpanProfile
			// consumer) can tell a complete account from a truncated window.
			if d := e.spanT.Stats().Dropped; d > 0 {
				e.reg.Counter("regions_trace_dropped_total").Add(d)
			}
		}
	}
	return agg
}

// sortWorkersByID is an insertion sort (the slice is small and mostly
// ordered: retired ids then live ids, each ascending).
func sortWorkersByID(ws []*worker) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j-1].id > ws[j].id; j-- {
			ws[j-1], ws[j] = ws[j], ws[j-1]
		}
	}
}

func (w *worker) loop(e *Engine) {
	defer e.wg.Done()
	defer close(w.done)
	var prevCycles uint64
	for {
		t, stolen, ok := e.next(w)
		if !ok {
			break
		}
		// A pop freed a deque slot; unblock any submitter waiting on it.
		e.wake()
		start := time.Now()
		simBefore := w.env.Counters().TotalCycles()
		sum, err := w.runTask(t)
		w.stats.Busy += time.Since(start)
		w.stats.Tasks++
		if stolen {
			w.stats.Steals++
		}
		if err != nil {
			w.stats.Failures++
			w.stats.LastError = err.Error()
			w.env.reset()
			if w.met != nil {
				w.met.failures.Inc()
			}
		} else {
			w.stats.Checksum += sum
		}
		simAfter := w.env.Counters().TotalCycles()
		w.pubBusy.Store(simAfter)
		w.pubSteals.Store(w.stats.Steals)
		if w.met != nil {
			w.met.tasks.Inc()
			if stolen {
				w.met.steals.Inc()
			}
			w.met.busyCycles.Add(simAfter - prevCycles)
			prevCycles = simAfter
		}
		if stolen {
			// The thief shard spent this window running work homed elsewhere;
			// the span names those cycles so a shard's track shows how much of
			// its time went to siblings' backlogs.
			e.emitSpan(trace.SpanStealStall, w.id, simBefore, simAfter)
		}
		if t.Done != nil {
			w.runDone(t, TaskResult{
				Shard:       w.id,
				Stolen:      stolen,
				Checksum:    sum,
				Err:         err,
				StartCycles: simBefore,
				EndCycles:   simAfter,
			})
		}
		if w.profEvery > 0 && (w.stats.Tasks == 1 || w.stats.Tasks%uint64(w.profEvery) == 0) {
			w.captureHeapProfile()
		}
	}
	if e.deferred {
		// Drain remaining sweep debt before the books close, so Close hands
		// back fully poisoned heaps and debt provably returns to zero.
		rt := w.env.Runtime()
		if rt.SweepDebt() > 0 {
			before := w.env.Counters().TotalCycles()
			rt.SweepDrain()
			w.stats.DrainSweepCycles = w.env.Counters().TotalCycles() - before
			e.emitSpan(trace.SpanSweep, w.id, before, before+w.stats.DrainSweepCycles)
		}
		w.stats.SweptPages = rt.SweptPages()
		w.stats.SweepDebtPeak = rt.SweepDebtPeak()
	}
	w.stats.SimCycles = w.env.Counters().TotalCycles()
	w.stats.OSBytes = w.env.Space().MappedBytes()
	if w.profEvery > 0 {
		w.captureHeapProfile()
	}
}

// runTask executes t, converting a panic (an app assertion, a runtime
// *Fault) into a recorded failure so one bad task cannot take down the
// shard, the behavior a service owes its other tenants.
func (w *worker) runTask(t Task) (sum uint32, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("shard: task %q: %v", t.Name, r)
		}
	}()
	return t.Run(w.env), nil
}

// runDone invokes t's completion callback, converting a panic in it into a
// recorded failure rather than letting it kill the worker goroutine.
func (w *worker) runDone(t Task, res TaskResult) {
	defer func() {
		if r := recover(); r != nil {
			w.stats.Failures++
			w.stats.LastError = fmt.Sprintf("shard: done %q: %v", t.Name, r)
			if w.met != nil {
				w.met.failures.Inc()
			}
		}
	}()
	t.Done(res)
}

// fnv32a is the 32-bit FNV-1a hash, inlined to keep Submit allocation-free.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
