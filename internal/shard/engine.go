package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"regions/internal/apps/appkit"
	"regions/internal/core"
	"regions/internal/metrics"
)

// DefaultPageBatch is the free-page cache batch used by shard runtimes when
// the config does not name one: each shard requests pages from its simulated
// OS 64 at a time and serves region churn from the cache.
const DefaultPageBatch = 64

// Task is one unit of work for the engine. Run receives the executing
// shard's environment and returns a checksum; checksums are summed (a
// commutative fold) into the shard's stats, so any placement of a fixed
// task set yields the same aggregate checksum — the engine's determinism
// gate. Summing rather than XOR keeps repeated identical tasks from
// cancelling out.
type Task struct {
	// Name labels the task in failure reports.
	Name string
	// Affinity, when non-empty, pins the task to the shard all tasks with
	// this key hash to; empty-key tasks are placed round-robin.
	Affinity string
	// Run executes the task on the shard's environment.
	Run func(env appkit.RegionEnv) uint32
}

// Config sizes an Engine.
type Config struct {
	// Shards is the number of independent runtimes; values below 1 become 1.
	Shards int
	// PageBatch overrides DefaultPageBatch for each shard's free-page
	// cache; 1 disables batching, 0 means the default.
	PageBatch int
	// Queue is the per-shard pending-task buffer (default 32).
	Queue int
	// Unsafe runs every shard on the unsafe region library (no reference
	// counting), for measuring the cost of safety under load.
	Unsafe bool
	// Metrics, when non-nil, attaches every shard's runtime and space to
	// the registry (core/mem series are shared across shards; the registry
	// is atomic) and adds per-shard labeled series: tasks, failures, busy
	// simulated cycles, and live queue depth. Close records the engine's
	// makespan and utilization gauges.
	Metrics *metrics.Registry
	// HeapProfileEvery, when above 0, makes each shard capture a heap
	// profile of its runtime every N completed tasks (plus after its
	// first task and once at drain, so short runs still expose one),
	// exposed via HeapReports — the data behind regionbench's /heap
	// endpoint. Capture runs on the shard's own goroutine, so it is safe
	// without locking the runtime.
	HeapProfileEvery int
}

// Stats is one shard's tally, owned by the shard goroutine until Close.
type Stats struct {
	Shard     int
	Tasks     uint64
	Failures  uint64
	LastError string        // first line of the most recent task failure
	Checksum  uint32        // sum of completed task checksums
	SimCycles uint64        // simulated cycles charged on this shard
	OSBytes   uint64        // memory the shard requested from its OS
	Busy      time.Duration // wall-clock time spent inside tasks
}

// Aggregate is the whole engine's tally after Close.
type Aggregate struct {
	Shards   int
	Tasks    uint64
	Failures uint64
	Checksum uint32 // summed across shards; placement-independent
	// MakespanCycles is the modelled completion time of the workload: the
	// maximum simulated cycle count over shards, since shards run
	// concurrently in wall time but each is its own simulated machine.
	MakespanCycles uint64
	// TotalCycles sums simulated cycles over all shards (the work done).
	TotalCycles uint64
	PerShard    []Stats
}

// workerMetrics caches one shard's labeled series.
type workerMetrics struct {
	tasks      *metrics.Counter
	failures   *metrics.Counter
	busyCycles *metrics.Counter
	queueDepth *metrics.Gauge
}

func newWorkerMetrics(reg *metrics.Registry, shard int) *workerMetrics {
	label := fmt.Sprintf(`{shard="%d"}`, shard)
	return &workerMetrics{
		tasks:      reg.Counter("regions_shard_tasks_total" + label),
		failures:   reg.Counter("regions_shard_failures_total" + label),
		busyCycles: reg.Counter("regions_shard_busy_cycles_total" + label),
		queueDepth: reg.Gauge("regions_shard_queue_depth" + label),
	}
}

type worker struct {
	env   *Env
	tasks chan Task
	stats Stats

	met       *workerMetrics
	profEvery int
	lastProf  atomic.Value // *metrics.HeapReport
}

// Engine distributes tasks over N shard workers. Submit may be called from
// any goroutine; Close waits for the queues to drain and returns the tally.
type Engine struct {
	shards []*worker
	rr     atomic.Uint32
	wg     sync.WaitGroup
	reg    *metrics.Registry
}

// New starts an engine with cfg.Shards workers, each owning an independent
// safe (or unsafe) region runtime with a batched free-page cache.
func New(cfg Config) *Engine {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	queue := cfg.Queue
	if queue <= 0 {
		queue = 32
	}
	batch := cfg.PageBatch
	if batch == 0 {
		batch = DefaultPageBatch
	}
	e := &Engine{shards: make([]*worker, n), reg: cfg.Metrics}
	for i := 0; i < n; i++ {
		w := &worker{
			env:       NewEnv(shardName(i), core.Options{Safe: !cfg.Unsafe, PageBatch: batch}),
			tasks:     make(chan Task, queue),
			profEvery: cfg.HeapProfileEvery,
		}
		if cfg.Metrics != nil {
			w.env.Runtime().SetMetrics(cfg.Metrics)
			w.env.Space().SetMetrics(cfg.Metrics)
			w.met = newWorkerMetrics(cfg.Metrics, i)
		}
		w.stats.Shard = i
		e.shards[i] = w
		e.wg.Add(1)
		go w.loop(&e.wg)
	}
	return e
}

// Shards returns the number of workers.
func (e *Engine) Shards() int { return len(e.shards) }

// ShardFor returns the shard index an affinity key maps to.
func (e *Engine) ShardFor(key string) int {
	return int(fnv32a(key) % uint32(len(e.shards)))
}

// Submit places t on a shard — by affinity key when one is set, round-robin
// otherwise — and blocks only when that shard's queue is full. Submitting
// after Close panics (send on closed channel), like writing to a closed
// pipe.
func (e *Engine) Submit(t Task) {
	var i int
	if t.Affinity != "" {
		i = e.ShardFor(t.Affinity)
	} else {
		i = int((e.rr.Add(1) - 1) % uint32(len(e.shards)))
	}
	w := e.shards[i]
	if w.met != nil {
		w.met.queueDepth.Inc()
	}
	w.tasks <- t
}

// HeapReports returns the most recent heap profile captured by each shard,
// in shard order, omitting shards that have not captured one yet. Profiles
// are taken by the shard goroutines (see Config.HeapProfileEvery); reading
// them is safe at any time.
func (e *Engine) HeapReports() []*metrics.HeapReport {
	var out []*metrics.HeapReport
	for _, w := range e.shards {
		if rep, ok := w.lastProf.Load().(*metrics.HeapReport); ok && rep != nil {
			out = append(out, rep)
		}
	}
	return out
}

// captureHeapProfile snapshots the shard runtime's heap into lastProf; a
// heap that fails its structural checks simply yields no new profile.
func (w *worker) captureHeapProfile() {
	rep, err := w.env.Runtime().HeapReport()
	if err != nil || rep == nil {
		return
	}
	rep.Origin = w.env.Name()
	w.lastProf.Store(rep)
}

// Close drains every shard's queue, stops the workers, and returns the
// aggregated stats.
func (e *Engine) Close() Aggregate {
	for _, w := range e.shards {
		close(w.tasks)
	}
	e.wg.Wait()
	agg := Aggregate{Shards: len(e.shards)}
	for _, w := range e.shards {
		s := w.stats
		agg.Tasks += s.Tasks
		agg.Failures += s.Failures
		agg.Checksum += s.Checksum
		agg.TotalCycles += s.SimCycles
		if s.SimCycles > agg.MakespanCycles {
			agg.MakespanCycles = s.SimCycles
		}
		agg.PerShard = append(agg.PerShard, s)
	}
	if e.reg != nil {
		e.reg.Gauge("regions_shard_makespan_cycles").Set(int64(agg.MakespanCycles))
		if agg.MakespanCycles > 0 && agg.Shards > 0 {
			util := agg.TotalCycles * 100 / (agg.MakespanCycles * uint64(agg.Shards))
			e.reg.Gauge("regions_shard_utilization_pct").Set(int64(util))
		}
	}
	return agg
}

func (w *worker) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	var prevCycles uint64
	for t := range w.tasks {
		if w.met != nil {
			w.met.queueDepth.Dec()
		}
		start := time.Now()
		sum, err := w.runTask(t)
		w.stats.Busy += time.Since(start)
		w.stats.Tasks++
		if err != nil {
			w.stats.Failures++
			w.stats.LastError = err.Error()
			w.env.reset()
			if w.met != nil {
				w.met.failures.Inc()
			}
		} else {
			w.stats.Checksum += sum
		}
		if w.met != nil {
			w.met.tasks.Inc()
			now := w.env.Counters().TotalCycles()
			w.met.busyCycles.Add(now - prevCycles)
			prevCycles = now
		}
		if w.profEvery > 0 && (w.stats.Tasks == 1 || w.stats.Tasks%uint64(w.profEvery) == 0) {
			w.captureHeapProfile()
		}
	}
	w.stats.SimCycles = w.env.Counters().TotalCycles()
	w.stats.OSBytes = w.env.Space().MappedBytes()
	if w.profEvery > 0 {
		w.captureHeapProfile()
	}
}

// runTask executes t, converting a panic (an app assertion, a runtime
// *Fault) into a recorded failure so one bad task cannot take down the
// shard, the behavior a service owes its other tenants.
func (w *worker) runTask(t Task) (sum uint32, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("shard: task %q: %v", t.Name, r)
		}
	}()
	return t.Run(w.env), nil
}

// fnv32a is the 32-bit FNV-1a hash, inlined to keep Submit allocation-free.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
