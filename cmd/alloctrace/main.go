// Alloctrace replays synthetic allocation traces against this repository's
// allocators — the trace-driven methodology of the allocation surveys the
// paper builds on (Detlefs/Dosser/Zorn, Grunwald/Zorn). Three workload
// shapes are generated: uniform (general-purpose churn), bimodal (the moss
// small-hot/large-cold pattern), and phased (objects born and dying in
// waves, the region pattern).
//
// Usage:
//
//	alloctrace [-ops N] [-seed S]
package main

import (
	"flag"
	"os"

	"regions/internal/tracebench"
)

func main() {
	var (
		ops  = flag.Int("ops", 100000, "approximate operations per trace")
		seed = flag.Uint("seed", 1, "trace generator seed")
	)
	flag.Parse()
	tracebench.Report(os.Stdout, *ops, uint32(*seed))
}
