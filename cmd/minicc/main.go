// Minicc runs the lcc-stand-in benchmark standalone: it compiles the
// generated ~2000-line C-subset program the given number of times on the
// chosen region environment, executes the produced code, and reports
// allocation statistics — the workload of the paper's lcc rows.
package main

import (
	"flag"
	"fmt"
	"os"

	"regions/internal/apps/appkit"
	"regions/internal/apps/minicc"
)

func main() {
	var (
		env   = flag.String("env", "safe", "region environment: safe, unsafe, emu:Sun, emu:BSD, emu:Lea, emu:GC")
		n     = flag.Int("n", 1, "number of times to compile the file")
		dump  = flag.Bool("dump-source", false, "print the generated source and exit")
		asm   = flag.Bool("S", false, "compile once and print pseudo-SPARC assembly")
		cache = flag.Bool("cache", false, "attach the UltraSparc-I cache model")
	)
	flag.Parse()

	if *dump {
		os.Stdout.Write(minicc.Source())
		return
	}
	if *asm {
		text, result := minicc.CompileToAsm(minicc.Source())
		fmt.Fprintf(os.Stderr, "! main() = %d\n", result)
		fmt.Print(text)
		return
	}
	e := appkit.NewRegionEnv(*env, appkit.Config{Cache: *cache})
	sum := minicc.RunRegion(e, *n)
	c := e.Counters()
	fmt.Printf("minicc: compiled %d times on %s\n", *n, e.Name())
	fmt.Printf("  checksum          %#x\n", sum)
	fmt.Printf("  allocations       %d (%d KB requested)\n", c.Allocs, c.BytesRequested/1024)
	fmt.Printf("  max live          %d KB\n", c.MaxLiveBytes/1024)
	fmt.Printf("  regions           %d created, max %d live, largest %d KB\n",
		c.RegionsCreated, c.MaxLiveRegions, c.MaxRegionBytes/1024)
	fmt.Printf("  cycles            %d base + %d memory\n", c.BaseCycles(), c.MemCycles())
	if *cache {
		fmt.Printf("  stalls            %d read + %d write\n", c.ReadStalls, c.WriteStalls)
	}
	fmt.Printf("  OS memory         %d KB\n", e.Space().MappedBytes()/1024)
}
