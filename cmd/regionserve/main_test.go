package main

import (
	"strings"
	"testing"
)

// goodOptions is a flag set validate accepts; each test case mutates one
// knob off it.
func goodOptions() options {
	return options{sessions: 2000, shards: 4, rate: 700, queue: 64}
}

// TestValidateFlagTable is the fail-fast audit of the CLI contract: every
// bad flag combination is rejected with a message naming the flag, and the
// good combinations — including the full tenant/resize shape — pass.
func TestValidateFlagTable(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
		want string // "" means the flag set must validate
	}{
		{"defaults", func(o *options) {}, ""},
		{"zero-sessions", func(o *options) { o.sessions = 0 }, "-sessions"},
		{"negative-sessions", func(o *options) { o.sessions = -5 }, "-sessions"},
		{"zero-shards", func(o *options) { o.shards = 0 }, "-shards"},
		{"zero-rate", func(o *options) { o.rate = 0 }, "-rate"},
		{"negative-rate", func(o *options) { o.rate = -1 }, "-rate"},
		{"zero-queue", func(o *options) { o.queue = 0 }, "-queue"},
		{"burst-no-len", func(o *options) { o.burstEvery = 1000 }, "-burst-len"},
		{"burst-len-too-long", func(o *options) { o.burstEvery = 1000; o.burstLen = 1000 }, "-burst-len"},
		{"burst-ok", func(o *options) { o.burstEvery = 1000; o.burstLen = 100 }, ""},
		{"fault-prob-high", func(o *options) { o.faultProb = 1.5 }, "-fault-prob"},
		{"fault-prob-negative", func(o *options) { o.faultProb = -0.1 }, "-fault-prob"},
		{"sweep-budget-without-defer", func(o *options) { o.sweepBud = 8 }, "-sweep-budget requires"},
		{"sweep-highwater-without-defer", func(o *options) { o.sweepWater = 8 }, "-sweep-highwater requires"},
		{"negative-sweep-budget", func(o *options) { o.deferDel = true; o.sweepBud = -1 }, "-sweep-budget"},
		{"negative-sweep-highwater", func(o *options) { o.deferDel = true; o.sweepWater = -1 }, "-sweep-highwater"},
		{"defer-ok", func(o *options) { o.deferDel = true; o.sweepBud = 4; o.sweepWater = 16 }, ""},
		{"negative-tenants", func(o *options) { o.tenants = -1 }, "-tenants"},
		{"tenants-ok", func(o *options) { o.tenants = 8 }, ""},
		{"resize-without-tenants", func(o *options) { o.resizeTo = 8 }, "-resize requires -tenants"},
		{"resize-equal-shards", func(o *options) { o.tenants = 8; o.resizeTo = 4 }, "must exceed -shards"},
		{"resize-shrink", func(o *options) { o.tenants = 8; o.resizeTo = 2 }, "must exceed -shards"},
		{"resize-ok", func(o *options) { o.tenants = 8; o.resizeTo = 8 }, ""},
		{"resize-after-without-resize", func(o *options) { o.resizeAfter = 0.5 }, "-resize-after requires"},
		{"resize-after-too-big", func(o *options) { o.tenants = 8; o.resizeTo = 8; o.resizeAfter = 1 }, "-resize-after"},
		{"resize-after-negative", func(o *options) { o.tenants = 8; o.resizeTo = 8; o.resizeAfter = -0.5 }, "-resize-after"},
		{"resize-after-ok", func(o *options) { o.tenants = 8; o.resizeTo = 8; o.resizeAfter = 0.25 }, ""},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			o := goodOptions()
			tc.mut(&o)
			err := o.validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("flag set rejected: %v (%+v)", err, o)
				}
				return
			}
			if err == nil {
				t.Fatalf("flag set accepted: %+v", o)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
