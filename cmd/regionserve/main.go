// Regionserve runs the multi-tenant serving simulator: a seeded open-loop
// Poisson arrival process (with optional burst phases) feeding N concurrent
// sessions onto the sharded region engine. Each session binds one or more
// regions for a request lifetime, runs a parse/work/delete lifecycle drawn
// from the six benchmark apps' allocation profiles, and reports its latency
// in simulated cycles. The run ends with p50/p99/p999, shed/queued tallies,
// and an SLO pass/fail line.
//
// Usage:
//
//	regionserve -sessions 2000 -seed 1
//	regionserve -sessions 5000 -rate 64 -burst-every 2000000 -burst-len 400000
//	regionserve -sessions 2000 -page-limit 96        # overload: shed via ErrOverload
//	regionserve -sessions 2000 -metrics-addr :8080   # live /metrics while serving
//	regionserve -sessions 2000 -profile bulk -defer-delete   # deferred reclamation
//	regionserve -sessions 2000 -profile strheavy             # pooled buffer recycling
//	regionserve -sessions 2000 -profile strheavy -no-strpool # its bump-only baseline
//	regionserve -sessions 2400 -shards 2 -tenants 8 -resize 4  # live shard grow
//
// All latency figures are simulated cycles, so output is bit-identical for
// a given flag set and seed — `regionserve -sessions 2000 -seed 1` twice
// yields byte-for-byte the same report. The exit code is 0 whenever the run
// itself completes, even when load was shed (overload is an outcome, not an
// error); infrastructure failures (a panicking session, a corrupt heap at
// drain) exit 1. See docs/SERVING.md for the workload model.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"

	"regions/internal/mem"
	"regions/internal/metrics"
	"regions/internal/serve"
	"regions/internal/trace"
)

// options are the parsed flag values; validate is the fail-fast audit main
// runs before anything serves, extracted so the flag contract is testable.
type options struct {
	sessions    int
	shards      int
	rate        float64
	queue       int
	burstEvery  uint64
	burstLen    uint64
	faultProb   float64
	deferDel    bool
	sweepBud    int
	sweepWater  int
	tenants     int
	resizeTo    int
	resizeAfter float64
	explain     bool
	topSlow     int
	args        []string
}

// validate returns the first configuration mistake, nil for a runnable flag
// set. Every rule here is a run not worth starting: either the flag value
// is nonsense on its own, or it silently does nothing without a companion.
func (o options) validate() error {
	if o.sessions < 1 {
		return fmt.Errorf("-sessions must be at least 1, got %d", o.sessions)
	}
	if o.shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", o.shards)
	}
	if o.rate <= 0 {
		return fmt.Errorf("-rate must be positive, got %g", o.rate)
	}
	if o.queue < 1 {
		return fmt.Errorf("-queue must be at least 1, got %d", o.queue)
	}
	if o.burstEvery > 0 && (o.burstLen == 0 || o.burstLen >= o.burstEvery) {
		return fmt.Errorf("-burst-len must be in (0, -burst-every), got %d of %d", o.burstLen, o.burstEvery)
	}
	if o.faultProb < 0 || o.faultProb > 1 {
		return fmt.Errorf("-fault-prob must be in [0, 1], got %g", o.faultProb)
	}
	// Sweep tuning without deferred deletion would silently do nothing, and
	// a zero-or-negative budget would mean "sweep no pages per slice" —
	// both are configuration mistakes, not runs worth starting.
	if o.sweepBud != 0 && !o.deferDel {
		return fmt.Errorf("-sweep-budget requires -defer-delete")
	}
	if o.sweepWater != 0 && !o.deferDel {
		return fmt.Errorf("-sweep-highwater requires -defer-delete")
	}
	if o.deferDel && o.sweepBud < 0 {
		return fmt.Errorf("-sweep-budget must be at least 1 (or 0 for the default), got %d", o.sweepBud)
	}
	if o.deferDel && o.sweepWater < 0 {
		return fmt.Errorf("-sweep-highwater must be at least 1 (or 0 for the default), got %d", o.sweepWater)
	}
	if o.tenants < 0 {
		return fmt.Errorf("-tenants must not be negative, got %d", o.tenants)
	}
	// Elastic resharding only makes sense over tenant state, and only as a
	// grow: a -resize at or below -shards has nothing to rebalance onto.
	if o.resizeTo != 0 && o.tenants == 0 {
		return fmt.Errorf("-resize requires -tenants")
	}
	if o.resizeTo != 0 && o.resizeTo <= o.shards {
		return fmt.Errorf("-resize (%d) must exceed -shards (%d)", o.resizeTo, o.shards)
	}
	if o.resizeAfter != 0 && o.resizeTo == 0 {
		return fmt.Errorf("-resize-after requires -resize")
	}
	if o.resizeAfter < 0 || o.resizeAfter >= 1 {
		return fmt.Errorf("-resize-after must be in (0, 1), got %g", o.resizeAfter)
	}
	// -top-slow tunes the -explain table; alone it silently does nothing.
	if o.topSlow != 0 && !o.explain {
		return fmt.Errorf("-top-slow requires -explain")
	}
	if o.topSlow < 0 {
		return fmt.Errorf("-top-slow must be at least 1 (or 0 for the default), got %d", o.topSlow)
	}
	if len(o.args) > 0 {
		return fmt.Errorf("unexpected argument %q: regionserve takes flags only", o.args[0])
	}
	return nil
}

func main() {
	var (
		sessions = flag.Int("sessions", 2000, "number of sessions to offer")
		seed     = flag.Int64("seed", 1, "seed for arrivals, profiles, and session weights")
		shards   = flag.Int("shards", 4, "number of shard runtimes serving")
		rate     = flag.Float64("rate", 700, "offered load in arrivals per simulated Mcycle")

		burstEvery = flag.Uint64("burst-every", 0, "burst period in simulated cycles (0 disables bursts)")
		burstLen   = flag.Uint64("burst-len", 0, "burst window length in simulated cycles")
		burstX     = flag.Float64("burst-x", 4, "arrival-rate multiplier inside burst windows")

		queue  = flag.Int("queue", 64, "per-shard admission queue cap; arrivals beyond it are shed")
		sloP99 = flag.Uint64("slo-p99", 1_000_000, "p99 latency target in simulated cycles for the SLO line")

		pageLimit = flag.Int("page-limit", 0, "cap each shard's simulated OS at N 4 KiB pages (0 = unlimited)")
		faultNth  = flag.Uint64("fault-nth", 0, "fail every Nth page-mapping call on each shard (0 disables)")
		faultProb = flag.Float64("fault-prob", 0, "fail each page-mapping call with this probability")
		faultSeed = flag.Int64("fault-seed", 1, "seed for -fault-prob draws")
		faultBud  = flag.Uint64("fault-budget", 0, "per-shard mapped-byte budget before mappings fail (0 = unlimited)")

		profile    = flag.String("profile", "", "serve only the named session profile (default: the weighted six-app mix)")
		noStrPool  = flag.Bool("no-strpool", false, "disable the pooled string allocator on every shard (A/B baseline: all string allocations bump)")
		deferDel   = flag.Bool("defer-delete", false, "deferred reclamation: deletes detach, pages are swept incrementally on idle cycles")
		sweepBud   = flag.Int("sweep-budget", 0, "pages per sweep slice (0 = runtime default; requires -defer-delete)")
		sweepWater = flag.Int("sweep-highwater", 0, "sweep-debt pages above which allocations pay a sweep tax (0 = runtime default; requires -defer-delete)")

		tenants     = flag.Int("tenants", 0, "tenant mode: sessions belong to N tenants with long-lived state regions (0 disables)")
		resizeTo    = flag.Int("resize", 0, "grow the engine live to N shards mid-run, migrating tenant regions (requires -tenants; must exceed -shards)")
		resizeAfter = flag.Float64("resize-after", 0, "fraction of sessions served before the resize barrier (default 0.5; requires -resize)")

		metAddr = flag.String("metrics-addr", "", "serve GET /metrics (Prometheus text format) on this address during the run")
		jsonOut = flag.Bool("json", false, "emit the full result as JSON instead of the text report")
		explain = flag.Bool("explain", false, "record request-level spans and report per-phase latency attribution")
		topSlow = flag.Int("top-slow", 0, "slowest requests shown in the -explain breakdown (0 = default 5)")
	)
	flag.Parse()

	opts := options{
		sessions:    *sessions,
		shards:      *shards,
		rate:        *rate,
		queue:       *queue,
		burstEvery:  *burstEvery,
		burstLen:    *burstLen,
		faultProb:   *faultProb,
		deferDel:    *deferDel,
		sweepBud:    *sweepBud,
		sweepWater:  *sweepWater,
		tenants:     *tenants,
		resizeTo:    *resizeTo,
		resizeAfter: *resizeAfter,
		explain:     *explain,
		topSlow:     *topSlow,
		args:        flag.Args(),
	}
	if err := opts.validate(); err != nil {
		fail(2, "%v", err)
	}

	cfg := serve.Config{
		Sessions:    *sessions,
		Seed:        *seed,
		Shards:      *shards,
		Rate:        *rate,
		BurstEvery:  *burstEvery,
		BurstLen:    *burstLen,
		BurstFactor: *burstX,
		MaxQueue:    *queue,
		SLOP99:      *sloP99,
		PageLimit:   *pageLimit,

		Profile:        *profile,
		NoStrPool:      *noStrPool,
		DeferredDelete: *deferDel,
		SweepBudget:    *sweepBud,
		SweepHighWater: *sweepWater,

		Tenants:     *tenants,
		ResizeTo:    *resizeTo,
		ResizeAfter: *resizeAfter,

		Spans:   *explain,
		TopSlow: *topSlow,
	}
	if *faultNth > 0 || *faultProb > 0 || *faultBud > 0 {
		cfg.FaultPlan = &mem.FaultPlan{
			FailNth:    *faultNth,
			FailProb:   *faultProb,
			Seed:       *faultSeed,
			ByteBudget: *faultBud,
		}
	}
	if *metAddr != "" {
		reg := metrics.NewRegistry()
		cfg.Metrics = reg
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler(reg))
		srv := &http.Server{Addr: *metAddr, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "regionserve: metrics server:", err)
			}
		}()
		fmt.Printf("serving /metrics on %s\n", *metAddr)
	}

	res, err := serve.Run(cfg)
	if err != nil {
		fail(1, "%v", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fail(1, "%v", err)
		}
		return
	}
	printReport(res)
}

// printReport renders the deterministic text report. Every number is a
// session count or a simulated-cycle figure — nothing wall-clock — so two
// runs with the same flags produce byte-identical output.
func printReport(res *serve.Result) {
	fmt.Printf("regionserve: %d sessions, %d shards, seed %d, %g arrivals/Mcycle\n",
		res.Sessions, res.Shards, res.Seed, res.Rate)
	fmt.Printf("admitted %d (queued %d)  completed %d  shed %d (queue %d, oom %d)\n",
		res.Admitted, res.Queued, res.Completed, res.ShedQueue+res.ShedOOM,
		res.ShedQueue, res.ShedOOM)
	if res.Leaked > 0 {
		fmt.Printf("leaked regions: %d (deletion refused at abort; reclaimed at shard teardown)\n", res.Leaked)
	}
	fmt.Printf("latency (sim cycles): p50 %d  p99 %d  p999 %d  mean %d\n",
		res.P50, res.P99, res.P999, res.Mean)
	fmt.Printf("max queue depth %d  makespan %d sim cycles  checksum %08x\n",
		res.MaxQueueDepth, res.MakespanCycles, res.Checksum)
	if res.StrNew+res.StrReuse > 0 {
		fmt.Printf("string pool: %d new  %d reused (ratio %.3f)  %d big  %d freed\n",
			res.StrNew, res.StrReuse, res.StrReuseRatio, res.StrBig, res.StrFreed)
	}
	if res.DeferredDelete {
		fmt.Printf("sweep: peak debt %d pages  swept %d pages  reclamation lag %d sim cycles\n",
			res.SweepDebtPeakPages, res.SweptPages, res.ReclamationLagCycles)
	}
	if res.Tenants > 0 {
		fmt.Printf("tenants %d  migrations %d (%d pages)  tenant checksum %08x\n",
			res.Tenants, res.Migrations, res.MigratedPages, res.TenantChecksum)
	}
	if res.ResizeTo > 0 {
		fmt.Printf("resize %d -> %d shards  busy max/min: phase1 %.3f  phase2 %.3f\n",
			res.Shards, res.ResizeTo, res.Phase1BusyRatio, res.Phase2BusyRatio)
	}
	if res.FirstOverload != nil {
		fmt.Printf("first overload: %v\n", res.FirstOverload)
	}
	verdict := "PASS"
	if !res.SLOPass {
		verdict = "FAIL"
	}
	fmt.Printf("SLO: p99 %d <= %d sim cycles: %s\n", res.P99, res.SLOTarget, verdict)
	if res.Spans != nil {
		printExplain(res.Spans)
	}
}

// printExplain renders the -explain span report: the per-phase attribution
// table (exact order-statistic quantiles over completed requests) and the
// slowest requests with their phase breakdowns. The conservation property —
// each breakdown sums exactly to the request's latency — is enforced by the
// serve package before the report exists, so these numbers account for every
// cycle of every latency with no "other" bucket.
func printExplain(rep *serve.SpanReport) {
	fmt.Printf("phase attribution (%d requests, sim cycles):\n", rep.Requests)
	fmt.Printf("  %-12s %12s %10s %10s %10s %10s\n", "phase", "total", "p50", "p99", "p999", "max")
	for _, p := range rep.Phases {
		if p.TotalCycles == 0 && p.Max == 0 {
			continue
		}
		fmt.Printf("  %-12s %12d %10d %10d %10d %10d\n",
			p.Phase, p.TotalCycles, p.P50, p.P99, p.P999, p.Max)
	}
	if rep.DroppedEvents > 0 {
		fmt.Printf("  (span ring dropped %d events; attribution is a window, not an account)\n",
			rep.DroppedEvents)
	}
	if len(rep.SlowRequests) > 0 {
		fmt.Printf("slowest requests:\n")
		for i, sr := range rep.SlowRequests {
			fmt.Printf("  #%d session %d shard %d: %d cycles", i+1, sr.Session, sr.Shard, sr.LatencyCycles)
			sep := " ["
			for _, k := range trace.SpanKinds() {
				if c, ok := sr.PhaseCycles[k.String()]; ok && c > 0 {
					fmt.Printf("%s%s %d", sep, k, c)
					sep = " "
				}
			}
			if sep == " " {
				fmt.Print("]")
			}
			fmt.Println()
		}
	}
}

func fail(code int, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "regionserve: "+format+"\n", args...)
	os.Exit(code)
}
