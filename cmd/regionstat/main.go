// Regionstat runs one of the paper's benchmark applications with the live
// metrics registry attached and reports where the cycles and bytes went:
// the final metrics snapshot (Prometheus text format or JSON) and, with
// -heap, a per-region heap profile taken the moment the workload returns —
// live bytes, allocator bookkeeping, free space, fragmentation, and the
// top allocation sites. docs/OBSERVABILITY.md documents both schemas.
//
// Usage:
//
//	regionstat [-app cfrac] [-env safe] [-scale N] [-heap] [-top N]
//	           [-json] [-every 1s] [-sample N]
//
// -every prints a one-line progress reading of the registry at that
// interval while the app runs (the registry is safe to read concurrently).
// -sample N records every Nth allocation into the site profile.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"regions/internal/apps/appkit"
	"regions/internal/bench"
	"regions/internal/metrics"
)

func main() {
	var (
		app    = flag.String("app", "cfrac", "benchmark application to run")
		env    = flag.String("env", "safe", `environment: "safe" or "unsafe"`)
		scale  = flag.Int("scale", 1, "workload scale (the app's unit; see internal/bench)")
		heap   = flag.Bool("heap", false, "profile the heap when the workload returns")
		top    = flag.Int("top", 10, "regions shown in the heap-profile table")
		asJSON = flag.Bool("json", false, "emit JSON instead of Prometheus text / tables")
		every  = flag.Duration("every", 0, "print a progress line at this interval (0 disables)")
		sample = flag.Int("sample", 64, "record every Nth allocation in the site profile (0 disables)")
	)
	flag.Parse()

	if *scale < 1 {
		fmt.Fprintf(os.Stderr, "regionstat: -scale must be at least 1, got %d\n", *scale)
		os.Exit(2)
	}
	if *env != "safe" && *env != "unsafe" {
		fmt.Fprintf(os.Stderr, "regionstat: unknown env %q (want safe or unsafe)\n", *env)
		os.Exit(2)
	}
	if *top < 1 {
		fmt.Fprintf(os.Stderr, "regionstat: -top must be at least 1, got %d\n", *top)
		os.Exit(2)
	}
	if *sample < 0 {
		fmt.Fprintf(os.Stderr, "regionstat: -sample must be at least 0, got %d\n", *sample)
		os.Exit(2)
	}
	if *every < 0 {
		fmt.Fprintf(os.Stderr, "regionstat: -every must not be negative, got %v\n", *every)
		os.Exit(2)
	}
	var chosen *appkit.App
	for _, a := range bench.Apps() {
		if a.Name == *app {
			a := a
			chosen = &a
			break
		}
	}
	if chosen == nil {
		fmt.Fprintf(os.Stderr, "regionstat: unknown app %q; have:", *app)
		for _, a := range bench.Apps() {
			fmt.Fprintf(os.Stderr, " %s", a.Name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}

	reg := metrics.NewRegistry()
	if *sample > 0 {
		reg.SetSiteSampling(*sample)
	}
	stopProgress := startProgress(reg, *every)

	e := appkit.NewRegionEnv(*env, appkit.Config{Metrics: reg})
	sum := chosen.Region(e, *scale)

	// Profile before Finalize, while the workload's end-of-run heap state
	// (still-live regions included) is intact.
	var prof *metrics.HeapReport
	if *heap {
		rt := appkit.RuntimeOf(e)
		if rt == nil {
			fmt.Fprintf(os.Stderr, "regionstat: env %q has no real runtime to profile\n", *env)
			os.Exit(2)
		}
		var err error
		prof, err = metrics.HeapProfile(rt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "regionstat: heap profile:", err)
			os.Exit(1)
		}
		prof.Origin = *app
		prof.CapturedCycle = e.Counters().TotalCycles()
	}
	e.Finalize()
	stopProgress()

	fmt.Fprintf(os.Stderr, "app %s, env %s, scale %d: checksum %08x\n", *app, *env, *scale, sum)
	snap := reg.Snapshot()
	var err error
	if *asJSON {
		err = metrics.WriteJSON(os.Stdout, snap)
	} else {
		err = metrics.WritePrometheus(os.Stdout, snap)
	}
	if err == nil && prof != nil {
		if *asJSON {
			err = prof.WriteJSON(os.Stdout)
		} else {
			fmt.Println()
			prof.WriteText(os.Stdout, *top)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "regionstat:", err)
		os.Exit(1)
	}
}

// startProgress prints a one-line reading of the registry every interval
// until the returned stop function is called. The registry's metrics are
// individually atomic, so reading them while the app runs is safe; the line
// is a progress indicator, not a consistent snapshot.
func startProgress(reg *metrics.Registry, interval time.Duration) func() {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		start := time.Now()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				fmt.Fprintf(os.Stderr,
					"%6.1fs allocs=%d alloc-bytes=%d live-regions=%d barriers=%d pages-mapped=%d\n",
					time.Since(start).Seconds(),
					reg.Counter("regions_core_allocs_total").Value(),
					reg.Counter("regions_core_alloc_bytes_total").Value(),
					reg.Gauge("regions_core_live_regions").Value(),
					reg.Counter("regions_core_barrier_region_total").Value()+
						reg.Counter("regions_core_barrier_global_total").Value(),
					reg.Counter("regions_mem_pages_mapped_total").Value(),
				)
			}
		}
	}()
	return func() { close(done); <-finished }
}
