// Mudlle runs the mudlle benchmark standalone: it compiles the generated
// ~500-line scheme-like program the given number of times on the chosen
// region environment and reports the result and allocation statistics —
// the workload of the paper's mudlle rows.
package main

import (
	"flag"
	"fmt"
	"os"

	"regions/internal/apps/appkit"
	"regions/internal/apps/mudlle"
)

func main() {
	var (
		env   = flag.String("env", "safe", "region environment: safe, unsafe, emu:Sun, emu:BSD, emu:Lea, emu:GC")
		n     = flag.Int("n", 10, "number of times to compile the file")
		dump  = flag.Bool("dump-source", false, "print the generated source and exit")
		cache = flag.Bool("cache", false, "attach the UltraSparc-I cache model")
	)
	flag.Parse()

	if *dump {
		os.Stdout.Write(mudlle.Source())
		return
	}
	e := appkit.NewRegionEnv(*env, appkit.Config{Cache: *cache})
	sum := mudlle.RunRegion(e, *n)
	c := e.Counters()
	fmt.Printf("mudlle: compiled %d times on %s\n", *n, e.Name())
	fmt.Printf("  checksum          %#x\n", sum)
	fmt.Printf("  allocations       %d (%d KB requested)\n", c.Allocs, c.BytesRequested/1024)
	fmt.Printf("  regions           %d created, max %d live\n", c.RegionsCreated, c.MaxLiveRegions)
	fmt.Printf("  cycles            %d base + %d memory\n", c.BaseCycles(), c.MemCycles())
	if *cache {
		fmt.Printf("  stalls            %d read + %d write\n", c.ReadStalls, c.WriteStalls)
	}
	fmt.Printf("  OS memory         %d KB\n", e.Space().MappedBytes()/1024)
}
