// Regionbench regenerates the evaluation of Gay & Aiken, "Memory Management
// with Explicit Regions" (PLDI 1998): Tables 1-3 and Figures 8-11 of
// Section 5, measured on this repository's simulated machine.
//
// Usage:
//
//	regionbench [-scale-div N] [-table N | -figure N | -all]
//
// With -scale-div 1 (the default) the workloads are paper-sized; larger
// divisors shrink them proportionally for quick runs.
//
// The benchmark-report modes regenerate and gate the checked-in artifacts:
// -bench-out FILE writes a fresh regions-bench/v2 report, and
// -compare FILE re-measures and diffs against a checked-in report
// (Snapshot.Sub over the embedded metrics, simulated cycles per op over the
// micro benchmarks), exiting nonzero when a micro benchmark regresses
// beyond -compare-threshold.
//
// The throughput modes (-shards, -bench-out, -compare) accept -metrics-addr HOST:PORT
// to serve live observability over HTTP while the workload runs:
// GET /metrics is a Prometheus text-format scrape of the shared registry and
// GET /heap is a JSON array of the latest per-shard heap profiles (see
// docs/OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync/atomic"

	"regions/internal/bench"
	"regions/internal/metrics"
	"regions/internal/shard"
)

func main() {
	var (
		scaleDiv = flag.Int("scale-div", 1, "divide every app's default workload by this factor")
		table    = flag.Int("table", 0, "render only table N (1-3)")
		figure   = flag.Int("figure", 0, "render only figure N (8-11)")
		all      = flag.Bool("all", false, "render every table and figure (default if nothing selected)")
		ablation = flag.Bool("ablation", false, "render the ablation experiments")
		related  = flag.Bool("related", false, "render the related-work allocator comparison")
		jsonOut  = flag.Bool("json", false, "emit the full measurement matrix as JSON")
		verify   = flag.Bool("verify", true, "cross-check checksums across environments first")
		shards   = flag.Int("shards", 0, "run the whole-app throughput workload on N shards")
		repeats  = flag.Int("repeats", 4, "copies of each app per throughput run")
		benchOut = flag.String("bench-out", "", "write the benchmark report (micro + shard sweep) to this file")
		compare  = flag.String("compare", "", "compare a fresh benchmark run against this checked-in report; nonzero exit on regression")
		compThr  = flag.Float64("compare-threshold", bench.DefaultCompareThreshold,
			"allowed fractional sim-cycle increase per micro benchmark before -compare fails")
		metAddr  = flag.String("metrics-addr", "", "serve /metrics and /heap on this address during throughput runs")
		profEach = flag.Int("heap-profile-every", 64, "shard heap-profile cadence in tasks when -metrics-addr is set (0 disables)")
	)
	flag.Parse()

	// Validate every selection before any measurement runs: a typo'd flag
	// should fail in milliseconds, not after the paper-sized workloads.
	if *scaleDiv < 1 {
		fmt.Fprintf(os.Stderr, "regionbench: -scale-div must be at least 1, got %d\n", *scaleDiv)
		os.Exit(2)
	}
	if *table < 0 || *table > 3 {
		fmt.Fprintf(os.Stderr, "regionbench: tables are 1-3, got %d\n", *table)
		os.Exit(2)
	}
	if *figure != 0 && (*figure < 8 || *figure > 11) {
		fmt.Fprintf(os.Stderr, "regionbench: figures are 8-11, got %d\n", *figure)
		os.Exit(2)
	}
	// -shards 0 is the "disabled" default; spelling it out explicitly is a
	// mistake worth naming, as is any negative count.
	explicitShards := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			explicitShards = true
		}
	})
	if *shards < 0 || (explicitShards && *shards == 0) {
		fmt.Fprintf(os.Stderr, "regionbench: -shards must be at least 1, got %d\n", *shards)
		os.Exit(2)
	}
	if *repeats < 1 {
		fmt.Fprintf(os.Stderr, "regionbench: -repeats must be at least 1, got %d\n", *repeats)
		os.Exit(2)
	}
	if *profEach < 0 {
		fmt.Fprintf(os.Stderr, "regionbench: -heap-profile-every must be at least 0, got %d\n", *profEach)
		os.Exit(2)
	}
	if *compare != "" && *benchOut != "" {
		fmt.Fprintln(os.Stderr, "regionbench: -compare and -bench-out are mutually exclusive")
		os.Exit(2)
	}
	if *compThr < 0 {
		fmt.Fprintf(os.Stderr, "regionbench: -compare-threshold must be at least 0, got %g\n", *compThr)
		os.Exit(2)
	}
	// Load (and validate) the old report before measuring anything, so a
	// missing file or wrong schema_version fails in milliseconds.
	var oldReport *bench.Report
	if *compare != "" {
		var err error
		if oldReport, err = bench.LoadReport(*compare); err != nil {
			fmt.Fprintln(os.Stderr, "regionbench:", err)
			os.Exit(2)
		}
	}

	s := bench.NewSuite(*scaleDiv)
	w := os.Stdout

	// The throughput/report modes are self-contained: run them and exit.
	// Both accept -metrics-addr for live scraping while they run.
	opts, reg := metricsOpts(*metAddr, *profEach)
	if oldReport != nil {
		rep, err := bench.BuildBenchReportOpts(*scaleDiv, *repeats, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "regionbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "comparing against %s\n", *compare)
		regressions := bench.CompareReports(w, oldReport, rep, *compThr)
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "regionbench: %d regression(s):\n", len(regressions))
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Fprintln(w, "\nno regressions")
		return
	}
	if *benchOut != "" {
		f, err := os.Create(*benchOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "regionbench:", err)
			os.Exit(1)
		}
		rep, err := bench.BuildBenchReportOpts(*scaleDiv, *repeats, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "regionbench:", err)
			os.Exit(1)
		}
		if err := bench.EncodeBenchReport(f, rep); err != nil {
			fmt.Fprintln(os.Stderr, "regionbench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "regionbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "wrote %s\n", *benchOut)
		return
	}
	if *shards > 0 {
		r, err := bench.RunThroughputOpts(*shards, *scaleDiv, *repeats, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "regionbench:", err)
			os.Exit(1)
		}
		bench.PrintThroughput(w, r)
		if reg != nil {
			fmt.Fprintf(w, "metrics: %d simulated allocs across the run\n",
				reg.Counter("regions_core_allocs_total").Value())
		}
		return
	}

	if *table == 0 && *figure == 0 && !*ablation && !*related && !*jsonOut {
		*all = true
	}
	if *all {
		if err := bench.RunAll(w, s); err != nil {
			fmt.Fprintln(os.Stderr, "regionbench:", err)
			os.Exit(1)
		}
		return
	}
	if *verify {
		if err := s.VerifyChecksums(); err != nil {
			fmt.Fprintln(os.Stderr, "regionbench:", err)
			os.Exit(1)
		}
	}
	if *ablation {
		bench.Ablations(w, s)
	}
	if *related {
		bench.RelatedWork(w, s)
	}
	if *jsonOut {
		if err := bench.WriteJSON(w, s); err != nil {
			fmt.Fprintln(os.Stderr, "regionbench:", err)
			os.Exit(1)
		}
	}
	switch *table {
	case 1:
		bench.Table1(w)
	case 2:
		bench.Table2(w, s)
	case 3:
		bench.Table3(w, s)
	}
	switch *figure {
	case 8:
		bench.Figure8(w, s)
	case 9:
		bench.Figure9(w, s)
	case 10:
		bench.Figure10(w, s)
	case 11:
		bench.Figure11(w, s)
	}
}

// metricsOpts builds the throughput observability hooks. With an empty addr
// it still attaches a registry (so the report embeds a metrics snapshot)
// but starts no server; with an address it serves GET /metrics (Prometheus
// text format) and GET /heap (JSON heap profiles, populated once shards
// start capturing) for the lifetime of the process.
func metricsOpts(addr string, profEvery int) (bench.ThroughputOpts, *metrics.Registry) {
	reg := metrics.NewRegistry()
	opts := bench.ThroughputOpts{Metrics: reg}
	if addr == "" {
		return opts, reg
	}
	var eng atomic.Value // *shard.Engine
	opts.HeapProfileEvery = profEvery
	opts.OnEngine = func(e *shard.Engine) { eng.Store(e) }
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(reg))
	mux.Handle("/heap", metrics.HeapHandler(func() ([]*metrics.HeapReport, error) {
		if e, ok := eng.Load().(*shard.Engine); ok {
			return e.HeapReports(), nil
		}
		return nil, nil
	}))
	ln := &http.Server{Addr: addr, Handler: mux}
	go func() {
		if err := ln.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "regionbench: metrics server:", err)
		}
	}()
	fmt.Printf("serving /metrics and /heap on %s\n", addr)
	return opts, reg
}
