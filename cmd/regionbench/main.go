// Regionbench regenerates the evaluation of Gay & Aiken, "Memory Management
// with Explicit Regions" (PLDI 1998): Tables 1-3 and Figures 8-11 of
// Section 5, measured on this repository's simulated machine.
//
// Usage:
//
//	regionbench [-scale-div N] [-table N | -figure N | -all]
//
// With -scale-div 1 (the default) the workloads are paper-sized; larger
// divisors shrink them proportionally for quick runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"regions/internal/bench"
)

func main() {
	var (
		scaleDiv = flag.Int("scale-div", 1, "divide every app's default workload by this factor")
		table    = flag.Int("table", 0, "render only table N (1-3)")
		figure   = flag.Int("figure", 0, "render only figure N (8-11)")
		all      = flag.Bool("all", false, "render every table and figure (default if nothing selected)")
		ablation = flag.Bool("ablation", false, "render the ablation experiments")
		related  = flag.Bool("related", false, "render the related-work allocator comparison")
		jsonOut  = flag.Bool("json", false, "emit the full measurement matrix as JSON")
		verify   = flag.Bool("verify", true, "cross-check checksums across environments first")
	)
	flag.Parse()

	s := bench.NewSuite(*scaleDiv)
	w := os.Stdout

	if *table == 0 && *figure == 0 && !*ablation && !*related && !*jsonOut {
		*all = true
	}
	if *all {
		if err := bench.RunAll(w, s); err != nil {
			fmt.Fprintln(os.Stderr, "regionbench:", err)
			os.Exit(1)
		}
		return
	}
	if *verify {
		if err := s.VerifyChecksums(); err != nil {
			fmt.Fprintln(os.Stderr, "regionbench:", err)
			os.Exit(1)
		}
	}
	if *ablation {
		bench.Ablations(w, s)
	}
	if *related {
		bench.RelatedWork(w, s)
	}
	if *jsonOut {
		if err := bench.WriteJSON(w, s); err != nil {
			fmt.Fprintln(os.Stderr, "regionbench:", err)
			os.Exit(1)
		}
	}
	switch *table {
	case 0:
	case 1:
		bench.Table1(w)
	case 2:
		bench.Table2(w, s)
	case 3:
		bench.Table3(w, s)
	default:
		fmt.Fprintln(os.Stderr, "regionbench: tables are 1-3")
		os.Exit(2)
	}
	switch *figure {
	case 0:
	case 8:
		bench.Figure8(w, s)
	case 9:
		bench.Figure9(w, s)
	case 10:
		bench.Figure10(w, s)
	case 11:
		bench.Figure11(w, s)
	default:
		fmt.Fprintln(os.Stderr, "regionbench: figures are 8-11")
		os.Exit(2)
	}
}
