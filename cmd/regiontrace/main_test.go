package main

import (
	"strings"
	"testing"
)

// TestModeErrorTable is the fail-fast audit of the two-mode flag contract:
// cross-mode flags and positional arguments are usage errors naming the
// offending flag, and the legitimate shapes of both modes pass.
func TestModeErrorTable(t *testing.T) {
	cases := []struct {
		name  string
		set   []string
		spans bool
		args  []string
		want  string // "" means the invocation must be accepted
	}{
		{name: "app-defaults"},
		{name: "app-explicit", set: []string{"app", "env", "scale", "top", "chrome"}},
		{name: "spans-defaults", spans: true},
		{name: "spans-explicit", spans: true,
			set: []string{"spans", "sessions", "shards", "rate", "seed", "defer-delete", "jsonl"}},
		{name: "positional", args: []string{"cfrac"}, want: "regiontrace takes flags only"},
		{name: "spans-positional", spans: true, args: []string{"x"}, want: "flags only"},
		{name: "app-under-spans", spans: true, set: []string{"spans", "app"}, want: "-app is app-mode only"},
		{name: "top-under-spans", spans: true, set: []string{"spans", "top"}, want: "-top is app-mode only"},
		{name: "sessions-without-spans", set: []string{"sessions"}, want: "-sessions requires -spans"},
		{name: "defer-without-spans", set: []string{"defer-delete"}, want: "-defer-delete requires -spans"},
		{name: "rate-without-spans", set: []string{"rate"}, want: "-rate requires -spans"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			set := map[string]bool{}
			for _, f := range tc.set {
				set[f] = true
			}
			err := modeError(set, tc.spans, tc.args)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("invocation rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("bad invocation accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
