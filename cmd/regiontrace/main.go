// Regiontrace runs a traced workload and renders what the ring buffer
// caught. It has two modes:
//
// App mode (the default) traces one of the paper's benchmark applications
// event by event: a JSONL event log, a Chrome trace_event timeline (load it
// in chrome://tracing or https://ui.perfetto.dev), and a per-region lifetime
// report (birth/death cycles, allocation volume, failed deletions, leak
// candidates). docs/OBSERVABILITY.md documents the event schema and walks
// through this tool's output.
//
// Span mode (-spans) traces the serving simulator at request granularity
// instead: every request becomes a row of phase spans (queue, parse, work,
// delete, sweep) on its shard's track, and -chrome writes a timeline with
// one process per shard. See the "Spans" section of docs/OBSERVABILITY.md.
//
// Usage:
//
//	regiontrace [-app cfrac] [-env safe] [-scale N] [-events N]
//	            [-jsonl FILE] [-chrome FILE] [-top N]
//	regiontrace -spans [-sessions N] [-shards N] [-rate R] [-seed S]
//	            [-defer-delete] [-events N] [-jsonl FILE] [-chrome FILE]
//
// Flags from the wrong mode are usage errors, not silent no-ops: -spans
// rejects explicitly-set app-mode flags (-app, -env, -scale, -top) and the
// serve knobs reject runs without -spans. Positional arguments are always
// rejected. The per-region (or per-request) report goes to standard output.
package main

import (
	"flag"
	"fmt"
	"os"

	"regions/internal/apps/appkit"
	"regions/internal/bench"
	"regions/internal/serve"
	"regions/internal/trace"
)

// modeError is the fail-fast audit of the two-mode flag contract: set holds
// the flag names the user explicitly passed (from flag.Visit), spans says
// which mode they asked for, args is whatever was left after flags. It
// returns the first usage mistake, nil for a runnable invocation.
func modeError(set map[string]bool, spans bool, args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("unexpected argument %q: regiontrace takes flags only", args[0])
	}
	appOnly := []string{"app", "env", "scale", "top"}
	serveOnly := []string{"sessions", "shards", "rate", "seed", "defer-delete"}
	if spans {
		for _, f := range appOnly {
			if set[f] {
				return fmt.Errorf("-%s is app-mode only and does nothing under -spans", f)
			}
		}
		return nil
	}
	for _, f := range serveOnly {
		if set[f] {
			return fmt.Errorf("-%s requires -spans", f)
		}
	}
	return nil
}

func main() {
	var (
		app    = flag.String("app", "cfrac", "benchmark application to run")
		env    = flag.String("env", "safe", `environment: "safe", "unsafe", or "GC"`)
		scale  = flag.Int("scale", 1, "workload scale (the app's unit; see internal/bench)")
		events = flag.Int("events", 1<<20, "ring buffer capacity in events")
		jsonl  = flag.String("jsonl", "", "write the event log as JSON Lines to this file")
		chrome = flag.String("chrome", "", "write a Chrome trace_event timeline to this file")
		top    = flag.Int("top", 10, "regions shown in the per-region table")

		spans    = flag.Bool("spans", false, "trace the serving simulator at request-span granularity instead of an app")
		sessions = flag.Int("sessions", 600, "sessions to serve (requires -spans)")
		shards   = flag.Int("shards", 4, "shard runtimes serving (requires -spans)")
		rate     = flag.Float64("rate", 700, "arrivals per simulated Mcycle (requires -spans)")
		seed     = flag.Int64("seed", 1, "arrival/profile seed (requires -spans)")
		deferDel = flag.Bool("defer-delete", false, "serve with deferred reclamation (requires -spans)")
	)
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if err := modeError(explicit, *spans, flag.Args()); err != nil {
		fail(2, "%v", err)
	}
	if *events < 1 {
		fail(2, "-events must be at least 1, got %d", *events)
	}

	if *spans {
		if *sessions < 1 {
			fail(2, "-sessions must be at least 1, got %d", *sessions)
		}
		if *shards < 1 {
			fail(2, "-shards must be at least 1, got %d", *shards)
		}
		if *rate <= 0 {
			fail(2, "-rate must be positive, got %g", *rate)
		}
		runSpans(*sessions, *shards, *rate, *seed, *deferDel, *events, *jsonl, *chrome)
		return
	}

	if *scale < 1 {
		fail(2, "-scale must be at least 1, got %d", *scale)
	}
	var chosen *appkit.App
	for _, a := range bench.Apps() {
		if a.Name == *app {
			a := a
			chosen = &a
			break
		}
	}
	if chosen == nil {
		msg := fmt.Sprintf("unknown app %q; have:", *app)
		for _, a := range bench.Apps() {
			msg += " " + a.Name
		}
		fail(2, "%s", msg)
	}

	// Open output files before running the workload, so a bad path fails in
	// milliseconds instead of after a long traced run.
	jsonlFile := createFile(*jsonl)
	chromeFile := createFile(*chrome)

	t := trace.New(*events)
	cfg := appkit.Config{Tracer: t}
	var sum uint32
	switch *env {
	case "safe", "unsafe":
		e := appkit.NewRegionEnv(*env, cfg)
		sum = chosen.Region(e, *scale)
		e.Finalize()
	case "GC":
		if chosen.Malloc == nil {
			fail(2, "app %q has no malloc variant to run under GC", *app)
		}
		e := appkit.NewMallocEnv("GC", cfg)
		sum = chosen.Malloc(e, *scale)
		e.Finalize()
	default:
		fail(2, "unknown env %q (want safe, unsafe, or GC)", *env)
	}

	evs := t.Events()
	if jsonlFile != nil {
		writeAndClose(jsonlFile, func(f *os.File) error { return trace.WriteJSONL(f, evs) })
		fmt.Printf("wrote %d events to %s\n", len(evs), *jsonl)
	}
	if chromeFile != nil {
		writeAndClose(chromeFile, func(f *os.File) error { return trace.WriteChromeTrace(f, evs) })
		fmt.Printf("wrote Chrome timeline to %s\n", *chrome)
	}

	fmt.Printf("app %s, env %s, scale %d: checksum %08x\n", *app, *env, *scale, sum)
	trace.BuildProfile(evs, t.Dropped()).WriteReport(os.Stdout, *top)
}

// runSpans is the -spans mode: serve a seeded workload with an external span
// ring attached, then render the request-level stream.
func runSpans(sessions, shards int, rate float64, seed int64, deferDel bool, events int, jsonl, chrome string) {
	jsonlFile := createFile(jsonl)
	chromeFile := createFile(chrome)

	tr := trace.New(events)
	res, err := serve.Run(serve.Config{
		Sessions:       sessions,
		Shards:         shards,
		Rate:           rate,
		Seed:           seed,
		DeferredDelete: deferDel,
		SpanTracer:     tr,
	})
	if err != nil {
		fail(1, "%v", err)
	}

	evs := tr.Events()
	if jsonlFile != nil {
		writeAndClose(jsonlFile, func(f *os.File) error { return trace.WriteJSONL(f, evs) })
		fmt.Printf("wrote %d events to %s\n", len(evs), jsonl)
	}
	if chromeFile != nil {
		writeAndClose(chromeFile, func(f *os.File) error { return trace.WriteSpanChromeTrace(f, evs) })
		fmt.Printf("wrote span timeline to %s\n", chrome)
	}

	rep := res.Spans
	fmt.Printf("spans: %d sessions, %d shards, seed %d: %d requests, %d events, checksum %08x\n",
		sessions, shards, seed, rep.Requests, len(evs), res.Checksum)
	if rep.DroppedEvents > 0 {
		fmt.Printf("span ring dropped %d events; grow -events for a full account\n", rep.DroppedEvents)
	}
	fmt.Printf("  %-12s %12s %10s %10s %10s\n", "phase", "total", "p50", "p99", "max")
	for _, p := range rep.Phases {
		if p.TotalCycles == 0 && p.Max == 0 {
			continue
		}
		fmt.Printf("  %-12s %12d %10d %10d %10d\n", p.Phase, p.TotalCycles, p.P50, p.P99, p.Max)
	}
}

// createFile opens path for writing, or exits with a clear message; "" is
// no file.
func createFile(path string) *os.File {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		fail(1, "cannot write output: %v", err)
	}
	return f
}

func writeAndClose(f *os.File, write func(*os.File) error) {
	err := write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fail(1, "%v", err)
	}
}

func fail(code int, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "regiontrace: "+format+"\n", args...)
	os.Exit(code)
}
