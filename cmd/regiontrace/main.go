// Regiontrace runs one of the paper's benchmark applications with the
// event-level tracing layer attached and renders what the ring buffer
// caught: a JSONL event log, a Chrome trace_event timeline (load it in
// chrome://tracing or https://ui.perfetto.dev), and a per-region lifetime
// report (birth/death cycles, allocation volume, failed deletions, leak
// candidates). docs/OBSERVABILITY.md documents the event schema and walks
// through this tool's output.
//
// Usage:
//
//	regiontrace [-app cfrac] [-env safe] [-scale N] [-events N]
//	            [-jsonl FILE] [-chrome FILE] [-top N]
//
// The per-region report always goes to standard output. -env accepts the
// region environments backed by the real runtime ("safe", "unsafe") plus
// "GC" to trace the conservative collector's phases under the malloc
// variant of the app.
package main

import (
	"flag"
	"fmt"
	"os"

	"regions/internal/apps/appkit"
	"regions/internal/bench"
	"regions/internal/trace"
)

func main() {
	var (
		app    = flag.String("app", "cfrac", "benchmark application to run")
		env    = flag.String("env", "safe", `environment: "safe", "unsafe", or "GC"`)
		scale  = flag.Int("scale", 1, "workload scale (the app's unit; see internal/bench)")
		events = flag.Int("events", 1<<20, "ring buffer capacity in events")
		jsonl  = flag.String("jsonl", "", "write the event log as JSON Lines to this file")
		chrome = flag.String("chrome", "", "write a Chrome trace_event timeline to this file")
		top    = flag.Int("top", 10, "regions shown in the per-region table")
	)
	flag.Parse()

	if *scale < 1 {
		fmt.Fprintf(os.Stderr, "regiontrace: -scale must be at least 1, got %d\n", *scale)
		os.Exit(2)
	}
	if *events < 1 {
		fmt.Fprintf(os.Stderr, "regiontrace: -events must be at least 1, got %d\n", *events)
		os.Exit(2)
	}
	var chosen *appkit.App
	for _, a := range bench.Apps() {
		if a.Name == *app {
			a := a
			chosen = &a
			break
		}
	}
	if chosen == nil {
		fmt.Fprintf(os.Stderr, "regiontrace: unknown app %q; have:", *app)
		for _, a := range bench.Apps() {
			fmt.Fprintf(os.Stderr, " %s", a.Name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}

	// Open output files before running the workload, so a bad path fails in
	// milliseconds instead of after a long traced run.
	jsonlFile := createFile(*jsonl)
	chromeFile := createFile(*chrome)

	t := trace.New(*events)
	cfg := appkit.Config{Tracer: t}
	var sum uint32
	switch *env {
	case "safe", "unsafe":
		e := appkit.NewRegionEnv(*env, cfg)
		sum = chosen.Region(e, *scale)
		e.Finalize()
	case "GC":
		if chosen.Malloc == nil {
			fmt.Fprintf(os.Stderr, "regiontrace: app %q has no malloc variant to run under GC\n", *app)
			os.Exit(2)
		}
		e := appkit.NewMallocEnv("GC", cfg)
		sum = chosen.Malloc(e, *scale)
		e.Finalize()
	default:
		fmt.Fprintf(os.Stderr, "regiontrace: unknown env %q (want safe, unsafe, or GC)\n", *env)
		os.Exit(2)
	}

	evs := t.Events()
	if jsonlFile != nil {
		writeAndClose(jsonlFile, func(f *os.File) error { return trace.WriteJSONL(f, evs) })
		fmt.Printf("wrote %d events to %s\n", len(evs), *jsonl)
	}
	if chromeFile != nil {
		writeAndClose(chromeFile, func(f *os.File) error { return trace.WriteChromeTrace(f, evs) })
		fmt.Printf("wrote Chrome timeline to %s\n", *chrome)
	}

	fmt.Printf("app %s, env %s, scale %d: checksum %08x\n", *app, *env, *scale, sum)
	trace.BuildProfile(evs, t.Dropped()).WriteReport(os.Stdout, *top)
}

// createFile opens path for writing, or exits with a clear message; "" is
// no file.
func createFile(path string) *os.File {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "regiontrace: cannot write output: %v\n", err)
		os.Exit(1)
	}
	return f
}

func writeAndClose(f *os.File, write func(*os.File) error) {
	err := write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "regiontrace: %v\n", err)
		os.Exit(1)
	}
}
